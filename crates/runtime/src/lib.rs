//! `mcqa-runtime` — a Parsl-style workflow runtime at node scale.
//!
//! The paper's pipeline runs on ALCF supercomputers under Parsl: stages are
//! fleets of independent tasks, dynamically load-balanced, with retries and
//! per-stage accounting. This crate reproduces those semantics for a single
//! node:
//!
//! * [`executor`] — a persistent work-stealing thread pool
//!   (crossbeam-deque): per-worker deques + a global injector, task panics
//!   isolated per task, per-worker execution/steal counters.
//! * [`stage`] — `run_stage`: an ordered parallel map over a task list
//!   with error isolation and a [`metrics::StageMetrics`] record — the
//!   building block `mcqa-core` assembles its workflow from.
//! * [`retry`] — bounded-attempt retry with injectable backoff (Parsl's
//!   retry handler).
//! * [`scaling`] — an elastic worker-count policy driven by queue depth
//!   (Parsl's elastic blocks), exercised by the `runtime_scaling` bench.
//! * [`metrics`] — stage metrics and the run report printed by the
//!   Figure-1 reproduction.

pub mod executor;
pub mod metrics;
pub mod retry;
pub mod scaling;
pub mod stage;

pub use executor::{PoolStats, WorkStealingPool};
pub use metrics::{RunReport, StageMetrics};
pub use retry::{RetryOutcome, RetryPolicy};
pub use scaling::{ScalingDecision, ScalingPolicy};
pub use stage::{run_stage, TaskError};
