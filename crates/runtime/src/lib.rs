//! `mcqa-runtime` — a Parsl-style workflow runtime at node scale.
//!
//! The paper's pipeline runs on ALCF supercomputers under Parsl: stages are
//! fleets of independent tasks, dynamically load-balanced, with retries and
//! per-stage accounting. This crate reproduces those semantics for a single
//! node:
//!
//! * [`executor`] — a persistent work-stealing thread pool
//!   (crossbeam-deque): per-worker deques + a global injector, task panics
//!   isolated per task, per-worker execution/steal counters. The
//!   [`Executor`] handle is the `Arc`-backed view library crates accept so
//!   their batch APIs run on the caller's pool; [`Executor::global`] is the
//!   ambient default for call sites with no pipeline pool in scope.
//! * [`stage`] — `run_stage` / `run_stage_batched`: ordered parallel maps
//!   over a task list with error isolation and a
//!   [`metrics::StageMetrics`] record — the building blocks `mcqa-core`
//!   and `mcqa-eval` assemble their workflows from. The batched variant
//!   submits chunks of items per pool task (granularity picked by
//!   [`scaling::auto_batch_size`]), the perf lever for high-item-count
//!   stages.
//! * [`retry`] — bounded-attempt retry with injectable backoff (Parsl's
//!   retry handler).
//! * [`scaling`] — an elastic worker-count policy driven by queue depth
//!   (Parsl's elastic blocks), exercised by the `runtime_scaling` bench.
//! * [`metrics`] — stage metrics and the run report printed by the
//!   Figure-1 reproduction.

pub mod executor;
pub mod metrics;
pub mod retry;
pub mod scaling;
pub mod stage;

pub use executor::{Executor, PoolStats, WorkStealingPool};
pub use metrics::{RunReport, StageMetrics};
pub use retry::{RetryOutcome, RetryPolicy};
pub use scaling::{auto_batch_size, ScalingDecision, ScalingPolicy};
pub use stage::{run_stage, run_stage_batched, TaskError};
