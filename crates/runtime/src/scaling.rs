//! Elastic worker scaling policy (Parsl's elastic blocks, simplified).
//!
//! Given a queue-depth observation stream, the policy recommends a worker
//! count between configured bounds: scale out when the backlog per worker
//! exceeds a high-water mark for consecutive observations, scale in when
//! workers sit idle. Pure and deterministic — the decision logic is fully
//! unit-testable without threads.

use serde::{Deserialize, Serialize};

/// Pick a batch size for [`crate::run_stage_batched`]'s chunked submission.
///
/// The heuristic targets ~8 batches per worker: enough slack for the
/// work-stealing pool to rebalance uneven batches (the last worker to start
/// is never stuck behind one giant chunk), while still amortising the
/// per-task boxing + channel cost that dominates high-item-count stages of
/// cheap items. The cap bounds per-batch latency for very large stages so a
/// single batch never monopolises a worker for long.
pub fn auto_batch_size(items: usize, workers: usize) -> usize {
    if items == 0 {
        return 1;
    }
    let workers = workers.max(1);
    items.div_ceil(workers * 8).clamp(1, 1024)
}

/// Scaling policy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPolicy {
    /// Minimum workers.
    pub min_workers: usize,
    /// Maximum workers.
    pub max_workers: usize,
    /// Scale out when backlog/worker exceeds this.
    pub high_watermark: f64,
    /// Scale in when backlog/worker falls below this.
    pub low_watermark: f64,
    /// Consecutive observations required before acting.
    pub patience: usize,
}

impl Default for ScalingPolicy {
    fn default() -> Self {
        Self {
            min_workers: 1,
            max_workers: 16,
            high_watermark: 8.0,
            low_watermark: 1.0,
            patience: 2,
        }
    }
}

/// A scaling recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingDecision {
    /// Keep the current worker count.
    Hold,
    /// Grow to the given count.
    ScaleOut(usize),
    /// Shrink to the given count.
    ScaleIn(usize),
}

/// Stateful evaluator applying a [`ScalingPolicy`] to observations.
#[derive(Debug, Clone)]
pub struct ScalingController {
    policy: ScalingPolicy,
    workers: usize,
    high_streak: usize,
    low_streak: usize,
}

impl ScalingController {
    /// Create a controller starting at `initial_workers` (clamped to
    /// policy bounds).
    pub fn new(policy: ScalingPolicy, initial_workers: usize) -> Self {
        assert!(policy.min_workers >= 1);
        assert!(policy.max_workers >= policy.min_workers);
        assert!(policy.high_watermark > policy.low_watermark);
        let workers = initial_workers.clamp(policy.min_workers, policy.max_workers);
        Self { policy, workers, high_streak: 0, low_streak: 0 }
    }

    /// Current worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Feed one queue-depth observation; returns the decision taken (the
    /// controller applies it to its own state).
    pub fn observe(&mut self, queue_depth: usize) -> ScalingDecision {
        let per_worker = queue_depth as f64 / self.workers as f64;
        if per_worker > self.policy.high_watermark {
            self.high_streak += 1;
            self.low_streak = 0;
        } else if per_worker < self.policy.low_watermark {
            self.low_streak += 1;
            self.high_streak = 0;
        } else {
            self.high_streak = 0;
            self.low_streak = 0;
        }

        if self.high_streak >= self.policy.patience && self.workers < self.policy.max_workers {
            self.high_streak = 0;
            self.workers = (self.workers * 2).min(self.policy.max_workers);
            return ScalingDecision::ScaleOut(self.workers);
        }
        if self.low_streak >= self.policy.patience && self.workers > self.policy.min_workers {
            self.low_streak = 0;
            self.workers = (self.workers / 2).max(self.policy.min_workers);
            return ScalingDecision::ScaleIn(self.workers);
        }
        ScalingDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_batch_size_small_stages_stay_per_item() {
        // Fewer items than task slots: one item per task, no batching win.
        assert_eq!(auto_batch_size(0, 4), 1);
        assert_eq!(auto_batch_size(1, 4), 1);
        assert_eq!(auto_batch_size(32, 4), 1);
        assert_eq!(auto_batch_size(10, 0), 2, "zero workers clamped to one");
    }

    #[test]
    fn auto_batch_size_amortises_large_stages() {
        // 100k items on 4 workers: 32 task slots → batches of ~3125.
        let bs = auto_batch_size(100_000, 4);
        assert!(bs > 1_000, "large stages must batch aggressively: {bs}");
        assert!(bs <= 1024 || 100_000usize.div_ceil(bs) >= 4 * 8);
        // The cap holds for astronomically large stages.
        assert_eq!(auto_batch_size(10_000_000, 1), 1024);
    }

    #[test]
    fn auto_batch_size_covers_all_items() {
        for items in [1usize, 7, 64, 1_000, 99_999] {
            for workers in [1usize, 2, 8, 64] {
                let bs = auto_batch_size(items, workers);
                assert!(bs >= 1);
                assert!(items.div_ceil(bs) * bs >= items, "coverage {items}/{workers}");
            }
        }
    }

    #[test]
    fn scales_out_under_sustained_backlog() {
        let mut c = ScalingController::new(ScalingPolicy::default(), 2);
        assert_eq!(c.observe(100), ScalingDecision::Hold, "patience 1/2");
        assert_eq!(c.observe(100), ScalingDecision::ScaleOut(4));
        assert_eq!(c.workers(), 4);
        // Needs a fresh streak to scale again.
        assert_eq!(c.observe(100), ScalingDecision::Hold);
        assert_eq!(c.observe(100), ScalingDecision::ScaleOut(8));
    }

    #[test]
    fn scales_in_when_idle() {
        let mut c = ScalingController::new(ScalingPolicy::default(), 8);
        assert_eq!(c.observe(0), ScalingDecision::Hold);
        assert_eq!(c.observe(0), ScalingDecision::ScaleIn(4));
        assert_eq!(c.observe(0), ScalingDecision::Hold);
        assert_eq!(c.observe(0), ScalingDecision::ScaleIn(2));
    }

    #[test]
    fn respects_bounds() {
        let policy = ScalingPolicy { min_workers: 2, max_workers: 4, ..Default::default() };
        let mut c = ScalingController::new(policy, 100);
        assert_eq!(c.workers(), 4, "clamped at construction");
        for _ in 0..10 {
            c.observe(1_000);
        }
        assert_eq!(c.workers(), 4, "never exceeds max");
        for _ in 0..20 {
            c.observe(0);
        }
        assert_eq!(c.workers(), 2, "never below min");
    }

    #[test]
    fn moderate_load_holds() {
        let mut c = ScalingController::new(ScalingPolicy::default(), 4);
        for _ in 0..10 {
            assert_eq!(c.observe(16), ScalingDecision::Hold); // 4 per worker: in band
        }
        assert_eq!(c.workers(), 4);
    }

    #[test]
    fn mixed_signals_reset_streaks() {
        let mut c = ScalingController::new(ScalingPolicy::default(), 4);
        assert_eq!(c.observe(1000), ScalingDecision::Hold);
        assert_eq!(c.observe(10), ScalingDecision::Hold); // breaks the streak
        assert_eq!(c.observe(1000), ScalingDecision::Hold);
        assert_eq!(c.observe(1000), ScalingDecision::ScaleOut(8));
    }

    #[test]
    #[should_panic]
    fn invalid_policy_rejected() {
        ScalingController::new(ScalingPolicy { min_workers: 0, ..Default::default() }, 1);
    }
}
