//! Stage metrics and the workflow run report.

use serde::{Deserialize, Serialize};

/// Metrics for one pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Stage name.
    pub name: String,
    /// Items submitted.
    pub items: usize,
    /// Items completing successfully.
    pub ok: usize,
    /// Items failing (including panics).
    pub errors: usize,
    /// Items that panicked (subset of `errors`).
    pub panics: usize,
    /// Output records emitted by the stage. Equals `ok` for 1:1 stages;
    /// fan-out stages (e.g. chunking: docs in → chunks out) record the
    /// output count here so both docs/s and chunks/s are observable.
    pub produced: usize,
    /// Wall-clock seconds.
    pub elapsed_secs: f64,
}

impl StageMetrics {
    /// Metrics for a stage measured as one timed block rather than
    /// per-task: `produced` of `items` inputs yielded an output record, the
    /// rest were filtered out, and nothing panicked. Prefer this over a
    /// field-by-field struct literal so call sites don't drift as
    /// `StageMetrics` grows.
    pub fn single(name: &str, items: usize, produced: usize, elapsed_secs: f64) -> Self {
        Self {
            name: name.into(),
            items,
            ok: produced.min(items),
            errors: items.saturating_sub(produced),
            panics: 0,
            produced,
            elapsed_secs,
        }
    }

    /// Items per second (0 when time is unmeasured or no items ran).
    pub fn throughput(&self) -> f64 {
        if self.elapsed_secs > 0.0 && self.items > 0 {
            self.items as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// Output records per second (0 when time is unmeasured or nothing was
    /// produced). For the chunk stage this is chunks/s where
    /// [`Self::throughput`] is docs/s.
    pub fn output_throughput(&self) -> f64 {
        if self.elapsed_secs > 0.0 && self.produced > 0 {
            self.produced as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// Success rate in `[0, 1]` (1 for an empty stage).
    pub fn success_rate(&self) -> f64 {
        if self.items == 0 {
            1.0
        } else {
            self.ok as f64 / self.items as f64
        }
    }
}

/// A whole-workflow report: ordered stage metrics.
///
/// `render()` is the text behind the Figure-1 reproduction (workflow
/// overview with per-stage counts).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    stages: Vec<StageMetrics>,
}

impl RunReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a stage record.
    pub fn add(&mut self, m: StageMetrics) {
        self.stages.push(m);
    }

    /// Merge `m` into an existing stage of the same name (summing counts
    /// and elapsed time) or append it. This is how repeated stage
    /// executions — e.g. one answering pass per model card — aggregate into
    /// a single report row.
    pub fn absorb(&mut self, m: StageMetrics) {
        match self.stages.iter_mut().find(|s| s.name == m.name) {
            Some(s) => {
                s.items += m.items;
                s.ok += m.ok;
                s.errors += m.errors;
                s.panics += m.panics;
                s.produced += m.produced;
                s.elapsed_secs += m.elapsed_secs;
            }
            None => self.stages.push(m),
        }
    }

    /// The recorded stages in order.
    pub fn stages(&self) -> &[StageMetrics] {
        &self.stages
    }

    /// Total wall-clock seconds across stages.
    pub fn total_secs(&self) -> f64 {
        self.stages.iter().map(|s| s.elapsed_secs).sum()
    }

    /// Render a fixed-width text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>9} {:>9} {:>7} {:>9} {:>10} {:>11} {:>11}\n",
            "stage", "items", "ok", "errors", "out", "secs", "items/s", "out/s"
        ));
        out.push_str(&"-".repeat(95));
        out.push('\n');
        for s in &self.stages {
            out.push_str(&format!(
                "{:<22} {:>9} {:>9} {:>7} {:>9} {:>10.3} {:>11.1} {:>11.1}\n",
                s.name,
                s.items,
                s.ok,
                s.errors,
                s.produced,
                s.elapsed_secs,
                s.throughput(),
                s.output_throughput()
            ));
        }
        out.push_str(&format!("total wall-clock: {:.3}s\n", self.total_secs()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(name: &str, items: usize, ok: usize, secs: f64) -> StageMetrics {
        StageMetrics {
            name: name.into(),
            items,
            ok,
            errors: items - ok,
            panics: 0,
            produced: ok,
            elapsed_secs: secs,
        }
    }

    #[test]
    fn throughput_and_success() {
        let s = m("parse", 100, 95, 2.0);
        assert_eq!(s.throughput(), 50.0);
        assert_eq!(s.output_throughput(), 47.5);
        assert_eq!(s.success_rate(), 0.95);
        let empty = m("x", 0, 0, 0.0);
        assert_eq!(empty.throughput(), 0.0);
        assert_eq!(empty.success_rate(), 1.0);
    }

    #[test]
    fn report_renders_all_stages() {
        let mut r = RunReport::new();
        r.add(m("acquire", 2255, 2255, 1.2));
        r.add(m("parse", 2255, 2230, 3.4));
        r.add(m("chunk", 2230, 2230, 0.8));
        let text = r.render();
        for name in ["acquire", "parse", "chunk"] {
            assert!(text.contains(name), "{text}");
        }
        assert!(text.contains("items/s"));
        assert!((r.total_secs() - 5.4).abs() < 1e-9);
        assert_eq!(r.stages().len(), 3);
    }

    #[test]
    fn single_constructor_matches_hand_rolled_shape() {
        let s = StageMetrics::single("generate+judge", 1000, 96, 2.0);
        assert_eq!(s.items, 1000);
        assert_eq!(s.ok, 96);
        assert_eq!(s.errors, 904);
        assert_eq!(s.panics, 0);
        assert_eq!(s.produced, 96);
        assert_eq!(s.throughput(), 500.0);
        assert_eq!(s.output_throughput(), 48.0);
        // 1:1 stages: produced == items, no errors.
        let a = StageMetrics::single("acquire", 50, 50, 1.0);
        assert_eq!(a.ok, 50);
        assert_eq!(a.errors, 0);
    }

    #[test]
    fn absorb_merges_same_name_and_appends_new() {
        let mut r = RunReport::new();
        r.absorb(m("eval-answer", 100, 100, 1.0));
        r.absorb(m("eval-answer", 50, 40, 0.5));
        r.absorb(m("eval-assemble", 10, 10, 0.1));
        assert_eq!(r.stages().len(), 2);
        let ans = &r.stages()[0];
        assert_eq!(ans.items, 150);
        assert_eq!(ans.ok, 140);
        assert_eq!(ans.errors, 10);
        assert!((ans.elapsed_secs - 1.5).abs() < 1e-12);
        assert!((ans.throughput() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = RunReport::new();
        r.add(m("a", 1, 1, 0.1));
        let s = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back, r);
    }
}
