//! Property tests for the batched scheduler surface: `run_stage_batched`
//! must be observationally identical to `run_stage` — bit-identical ordered
//! results and identical ok/error/panic counts — for every batch size.

use std::sync::OnceLock;

use mcqa_runtime::{run_stage, run_stage_batched, Executor, TaskError};
use proptest::prelude::*;

fn exec() -> &'static Executor {
    static EXEC: OnceLock<Executor> = OnceLock::new();
    EXEC.get_or_init(|| Executor::new(4))
}

/// The task under test mixes all three outcomes deterministically:
/// successes, `Err` returns, and panics.
fn mixed_outcome(x: u64) -> Result<u64, String> {
    if x % 23 == 3 {
        panic!("induced panic on {x}");
    }
    if x % 11 == 5 {
        return Err(format!("induced failure on {x}"));
    }
    Ok(x.wrapping_mul(0x9E37_79B9).rotate_left(7))
}

proptest! {
    #[test]
    fn batched_is_bit_identical_to_per_item(
        items in proptest::collection::vec(any::<u64>(), 0..150),
    ) {
        let n = items.len();
        let (reference, ref_metrics) =
            run_stage(exec(), "ref", items.clone(), mixed_outcome);
        for batch_size in [1usize, 7, 64, n.max(1)] {
            let (batched, metrics) =
                run_stage_batched(exec(), "ref", items.clone(), batch_size, mixed_outcome);
            prop_assert_eq!(&batched, &reference, "batch_size {}", batch_size);
            prop_assert_eq!(metrics.items, ref_metrics.items);
            prop_assert_eq!(metrics.ok, ref_metrics.ok);
            prop_assert_eq!(metrics.errors, ref_metrics.errors);
            prop_assert_eq!(metrics.panics, ref_metrics.panics);
            prop_assert_eq!(metrics.produced, ref_metrics.produced);
        }
    }
}

/// A panic inside the middle of a batch poisons exactly that item's slot:
/// batch-mates before *and after* the panicking item still complete.
#[test]
fn mid_batch_panic_isolates_to_that_item_only() {
    let items: Vec<u64> = (0..50).collect();
    // Batch size 25 puts item 13 mid-batch with live neighbours both sides.
    let (results, metrics) = run_stage_batched(exec(), "poison", items, 25, |x| {
        if x == 13 {
            panic!("poison pill");
        }
        Ok::<u64, String>(x * 2)
    });
    assert_eq!(metrics.panics, 1);
    assert_eq!(metrics.ok, 49);
    assert_eq!(metrics.errors, 1);
    for (i, r) in results.iter().enumerate() {
        if i == 13 {
            assert_eq!(*r, Err(TaskError::Panicked));
        } else {
            assert_eq!(*r, Ok(i as u64 * 2), "item {i} must survive its batch-mate's panic");
        }
    }
}

/// Batch sizes far larger than the item count degenerate to a single task
/// without losing items or order.
#[test]
fn oversized_batch_is_one_task() {
    let before = exec().stats().total_executed();
    let (results, metrics) =
        run_stage_batched(exec(), "one-task", (0..10u64).collect(), 1_000_000, |x| {
            Ok::<u64, String>(x)
        });
    assert_eq!(metrics.ok, 10);
    assert_eq!(results.len(), 10);
    assert_eq!(exec().stats().total_executed(), before + 1, "all items in one pool task");
}
