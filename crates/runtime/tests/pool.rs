//! Integration tests for [`mcqa_runtime::WorkStealingPool`] through the
//! crate's public API: Parsl-style task-level fault isolation and genuine
//! multi-worker execution.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mcqa_runtime::{run_stage, TaskError, WorkStealingPool};

/// Every submitted job runs, and the work is spread across at least two
/// workers (the whole point of a work-stealing pool).
#[test]
fn all_jobs_execute_across_multiple_workers() {
    let pool = WorkStealingPool::new(4);
    let executed = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = crossbeam_channel::bounded(2_000);
    for i in 0..2_000u64 {
        let executed = Arc::clone(&executed);
        let tx = tx.clone();
        pool.submit(move || {
            // Non-trivial work so no single worker can drain the queue alone.
            let mut acc = 0u64;
            for k in 0..300 {
                acc = acc.wrapping_add(mcqa_util::splitmix64(i ^ k));
            }
            std::hint::black_box(acc);
            executed.fetch_add(1, Ordering::Relaxed);
            tx.send(()).unwrap();
        });
    }
    for _ in 0..2_000 {
        rx.recv_timeout(Duration::from_secs(30)).expect("job completed");
    }
    assert_eq!(executed.load(Ordering::Relaxed), 2_000);

    let stats = pool.stats();
    assert_eq!(stats.total_executed(), 2_000, "pool accounts for every job");
    let busy = stats.executed_per_worker.iter().filter(|&&n| n > 0).count();
    assert!(busy >= 2, "work must spread across ≥2 workers: {stats:?}");
}

/// A panicking job must not take down its worker: all jobs submitted after
/// the panic still complete, on a pool no wider than the panic count.
#[test]
fn panicking_jobs_do_not_kill_workers() {
    let pool = WorkStealingPool::new(2);
    // More panics than workers: if a panic killed a worker the pool would
    // deadlock on the follow-up batch.
    for _ in 0..8 {
        pool.submit(|| panic!("induced task failure"));
    }
    let (tx, rx) = crossbeam_channel::bounded(100);
    for i in 0..100u32 {
        let tx = tx.clone();
        pool.submit(move || tx.send(i).unwrap());
    }
    let mut got: Vec<u32> =
        (0..100).map(|_| rx.recv_timeout(Duration::from_secs(30)).unwrap()).collect();
    got.sort_unstable();
    assert_eq!(got, (0..100).collect::<Vec<_>>());
    assert!(pool.stats().total_executed() >= 108, "panicked jobs still count as executed");
}

/// The same isolation, observed through `run_stage`: panics land in their
/// own result slot and the stage metrics census them.
#[test]
fn run_stage_isolates_panics_per_slot() {
    let pool = WorkStealingPool::new(3);
    let items: Vec<u32> = (0..50).collect();
    let (results, metrics) = run_stage(&pool, "mixed", items, |x| {
        if x % 10 == 7 {
            panic!("poison item {x}");
        }
        Ok::<u32, String>(x * 2)
    });
    assert_eq!(metrics.items, 50);
    assert_eq!(metrics.panics, 5);
    assert_eq!(metrics.ok, 45);
    for (i, r) in results.iter().enumerate() {
        if i % 10 == 7 {
            assert_eq!(*r, Err(TaskError::Panicked));
        } else {
            assert_eq!(*r, Ok(i as u32 * 2), "order preserved around panics");
        }
    }
}
