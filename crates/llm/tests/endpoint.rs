//! Property tests for the `ModelEndpoint` surface: the batched completion
//! API must be observationally identical to sequential completion at any
//! worker count, the response cache must be a pure short-circuit, and the
//! call ledger must conserve counts across batch shapes.

use std::sync::{Arc, OnceLock};

use mcqa_llm::{
    build_endpoint, resolve, AssembledContext, Condition, McqItem, ModelEndpoint, ModelHub,
    ModelRequest, ModelSpec, PipelineRates, PromptPart, RequestPayload, ResolvedModel, Role,
    TraceMode, MODEL_CARDS,
};
use mcqa_ontology::{Ontology, OntologyConfig};
use mcqa_runtime::Executor;
use proptest::prelude::*;

fn ontology() -> &'static Arc<Ontology> {
    static ONT: OnceLock<Arc<Ontology>> = OnceLock::new();
    ONT.get_or_init(|| {
        Arc::new(Ontology::generate(&OntologyConfig {
            seed: 42,
            entities_per_kind: 30,
            qualitative_facts: 400,
            quantitative_facts: 20,
        }))
    })
}

fn endpoint() -> &'static dyn ModelEndpoint {
    static EP: OnceLock<Box<dyn ModelEndpoint>> = OnceLock::new();
    &**EP.get_or_init(|| build_endpoint(&ModelSpec::Sim, 42, Arc::clone(ontology())))
}

fn resolved(i: usize) -> ResolvedModel {
    let card = MODEL_CARDS[i % MODEL_CARDS.len()].clone();
    let cal = resolve(&card, &PipelineRates::nominal());
    ResolvedModel { card, cal }
}

fn item(x: u64) -> McqItem {
    McqItem {
        qid: x,
        bench: mcqa_llm::BenchKind::Synthetic,
        fact: mcqa_ontology::FactId(x % 50),
        stem: format!("Question number {x} about radiobiology?"),
        options: (0..7).map(|i| format!("candidate {i}")).collect(),
        correct: (x as usize) % 7,
        difficulty: (x % 100) as f64 / 100.0,
        is_math: false,
    }
}

/// A deterministic mixed-role request keyed by `x`: exercises every
/// payload variant the workflow issues.
fn request(x: u64) -> ModelRequest {
    let ont = ontology();
    let facts = ont.facts();
    let fact = &facts[(x as usize) % facts.len()];
    let teacher_q = mcqa_llm::TeacherModel::new(mcqa_llm::teacher::TeacherConfig {
        seed: 42,
        ..Default::default()
    })
    .generate_question(ont, fact, "pt");
    let payload = match x % 6 {
        0 => RequestPayload::GenerateQuestion { fact: fact.id, salt: format!("s{}", x / 6) },
        1 => RequestPayload::DistillTrace {
            question: teacher_q,
            mode: TraceMode::ALL[(x / 6) as usize % 3],
        },
        2 => RequestPayload::ScoreQuestion { question: teacher_q, salience: fact.salience },
        3 => RequestPayload::GradeAnswer {
            completion: format!("Answer: {}", ['A', 'B', 'C'][(x / 6) as usize % 3]),
            correct: (x as usize / 6) % 7,
            n_options: 7,
        },
        4 => RequestPayload::ClassifyMath { item: item(x / 6) },
        _ => RequestPayload::Answer {
            model: resolved((x / 6) as usize),
            item: item(x / 6),
            condition: Condition::all()[(x / 6) as usize % 5],
            context: (x.is_multiple_of(2)).then_some(AssembledContext {
                passages_in_window: 3,
                passages_total: 5,
                relevant_in_window: x.is_multiple_of(4),
                relevant_retrieved: true,
                prompt_tokens: 400,
            }),
        },
    };
    ModelRequest::new(vec![PromptPart::user(format!("request {x}"))], payload, 42)
}

proptest! {
    #[test]
    fn complete_batch_is_bit_identical_to_serial(
        keys in proptest::collection::vec(any::<u64>(), 0..24),
    ) {
        let reqs: Vec<ModelRequest> = keys.iter().map(|&x| request(x)).collect();
        let ep = endpoint();
        let serial: Vec<_> = reqs.iter().map(|r| ep.complete(r)).collect();
        for workers in [1usize, 4] {
            let exec = Executor::new(workers);
            let batched = ep.complete_batch(&exec, &reqs);
            prop_assert_eq!(&batched, &serial, "workers {}", workers);
        }
    }

    #[test]
    fn cache_short_circuit_is_observationally_pure(
        keys in proptest::collection::vec(any::<u64>(), 1..16),
    ) {
        // Serve the list twice through a fresh hub: the second pass is
        // all cache hits and must be byte-identical to the first.
        let hub = ModelHub::new(build_endpoint(&ModelSpec::Sim, 42, Arc::clone(ontology())));
        let reqs: Vec<ModelRequest> = keys.iter().map(|&x| request(x)).collect();
        let first: Vec<_> = reqs.iter().map(|r| hub.complete(r)).collect();
        let cached_completions = hub.cache().len();
        let second: Vec<_> = reqs.iter().map(|r| hub.complete(r)).collect();
        prop_assert_eq!(&second, &first);
        prop_assert_eq!(hub.cache().len(), cached_completions, "second pass adds nothing");
        // And the cached responses equal the bare backend's.
        let bare: Vec<_> = reqs.iter().map(|r| endpoint().complete(r)).collect();
        prop_assert_eq!(&first, &bare);
        // Ledger: the second pass hits for every *retained* request kind;
        // once-only payloads (teacher generation/distillation, quality
        // scoring) bypass the cache by policy and pay the deterministic
        // backend again instead.
        let total = hub.ledger().total();
        prop_assert_eq!(total.calls as usize, reqs.len() * 2);
        let repeatable = reqs.iter().filter(|r| r.payload.cacheable()).count();
        prop_assert!(
            total.cache_hits as usize >= repeatable,
            "every cacheable repeat is a hit ({} < {repeatable})", total.cache_hits
        );
    }

    #[test]
    fn ledger_conserves_counts_across_batch_shapes(
        keys in proptest::collection::vec(any::<u64>(), 1..32),
        split in any::<u64>(),
    ) {
        let reqs: Vec<ModelRequest> = keys.iter().map(|&x| request(x)).collect();
        let exec = Executor::new(4);

        // Shape A: one batch. Shape B: two batches split at an arbitrary
        // point. Shape C: all serial.
        let shapes: [Vec<&[ModelRequest]>; 3] = {
            let cut = (split as usize) % (reqs.len() + 1);
            [vec![&reqs[..]], vec![&reqs[..cut], &reqs[cut..]], vec![]]
        };
        let mut outputs: Vec<Vec<mcqa_llm::ModelResponse>> = Vec::new();
        for (si, shape) in shapes.iter().enumerate() {
            let hub = ModelHub::new(build_endpoint(&ModelSpec::Sim, 42, Arc::clone(ontology())));
            let mut out = Vec::new();
            if shape.is_empty() {
                out.extend(reqs.iter().map(|r| hub.complete(r)));
            } else {
                for part in shape {
                    out.extend(hub.complete_batch(&exec, part));
                }
            }
            let total = hub.ledger().total();
            // Conservation: every request is exactly one call, and every
            // call is either a hit or a backend completion.
            prop_assert_eq!(total.calls as usize, reqs.len(), "shape {}", si);
            prop_assert_eq!(
                (total.cache_hits + (total.calls - total.cache_hits)) as usize,
                reqs.len()
            );
            // The cache holds one entry per distinct completion of the
            // *retained* request kinds (once-only payloads are never
            // stored), and the backend served at least that many
            // (concurrent first-touches of one key may race, never
            // under-count).
            let distinct: std::collections::HashSet<u64> = reqs
                .iter()
                .filter(|r| r.payload.cacheable())
                .map(|r| r.cache_key())
                .collect();
            prop_assert_eq!(hub.cache().len(), distinct.len(), "shape {}", si);
            prop_assert!(total.calls - total.cache_hits >= distinct.len() as u64);
            // Batch submissions were tallied per role actually present.
            let batches: u64 = Role::ALL.iter().map(|r| hub.ledger().role(*r).batches).sum();
            let nonempty = shape.iter().filter(|p| !p.is_empty()).count();
            prop_assert!(batches >= nonempty as u64, "shape {}", si);
            outputs.push(out);
        }
        prop_assert_eq!(&outputs[0], &outputs[1], "batch split cannot change results");
        prop_assert_eq!(&outputs[0], &outputs[2], "serial vs batched identical");
    }
}

#[test]
fn token_estimates_are_request_deterministic() {
    // The same request always reports the same token accounting — the
    // ledger's cost surface is reproducible.
    let ep = endpoint();
    for x in 0..12u64 {
        let r = request(x);
        let a = ep.complete(&r);
        let b = ep.complete(&r);
        assert_eq!((a.tokens_in, a.tokens_out), (b.tokens_in, b.tokens_out));
        assert_eq!(a.tokens_in, r.prompt_tokens());
        assert_eq!(a.tokens_out, mcqa_text::token_count(&a.text));
    }
}
