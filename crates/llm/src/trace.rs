//! Reasoning-trace modes (paper Figure 3).

use serde::{Deserialize, Serialize};

/// The three reasoning modes the teacher distils simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TraceMode {
    /// Option-level analysis of every choice.
    Detailed,
    /// Governing principle + elimination of the strongest distractors.
    Focused,
    /// Compact high-level rationale.
    Efficient,
}

impl TraceMode {
    /// All modes in canonical order.
    pub const ALL: [TraceMode; 3] = [TraceMode::Detailed, TraceMode::Focused, TraceMode::Efficient];

    /// The vector-database name for this mode (the paper keeps one FAISS
    /// store per mode).
    pub fn db_name(self) -> &'static str {
        match self {
            TraceMode::Detailed => "traces-detailed",
            TraceMode::Focused => "traces-focused",
            TraceMode::Efficient => "traces-efficient",
        }
    }

    /// Lowercase label used in schemas and reports.
    pub fn label(self) -> &'static str {
        match self {
            TraceMode::Detailed => "detailed",
            TraceMode::Focused => "focused",
            TraceMode::Efficient => "efficient",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_db_names_unique() {
        let mut labels = std::collections::HashSet::new();
        let mut dbs = std::collections::HashSet::new();
        for m in TraceMode::ALL {
            assert!(labels.insert(m.label()));
            assert!(dbs.insert(m.db_name()));
            assert!(m.db_name().starts_with("traces-"));
        }
    }

    #[test]
    fn serde_uses_variant_names() {
        assert_eq!(serde_json::to_string(&TraceMode::Focused).unwrap(), "\"Focused\"");
    }
}
