//! [`ModelHub`]: the cross-cutting services stacked on a backend.
//!
//! The hub wraps any [`ModelEndpoint`] with the two services every
//! deployment needs and no backend should reimplement:
//!
//! * the content-addressed [`ResponseCache`] — repeated requests (the
//!   no-math re-answer pass, repeated `run_cards`, ablations) short-circuit
//!   without touching the backend;
//! * the per-role [`CallLedger`] — calls, batch sizes, token estimates,
//!   cache hit rate.
//!
//! The hub itself implements [`ModelEndpoint`], so consumers hold one
//! `Arc<dyn ModelEndpoint>` and get caching + accounting transparently.
//! Batched completion instruments every request individually (the batch
//! fan-out runs the same cached path per item), so serial and batched
//! execution stay bit-identical *and* identically accounted.

use std::time::Instant;

use mcqa_runtime::Executor;

use crate::endpoint::{fan_out_batch, ModelEndpoint, ModelRequest, ModelResponse, Role};
use crate::ledger::CallLedger;
use crate::response_cache::ResponseCache;

/// A backend plus its cache and ledger.
pub struct ModelHub {
    endpoint: Box<dyn ModelEndpoint>,
    cache: ResponseCache,
    ledger: CallLedger,
}

impl ModelHub {
    /// Stack the services on `endpoint`.
    pub fn new(endpoint: Box<dyn ModelEndpoint>) -> Self {
        Self { endpoint, cache: ResponseCache::new(), ledger: CallLedger::new() }
    }

    /// The call ledger.
    pub fn ledger(&self) -> &CallLedger {
        &self.ledger
    }

    /// The response cache.
    pub fn cache(&self) -> &ResponseCache {
        &self.cache
    }

    /// Serve one request through the cache, tallying the ledger.
    ///
    /// Cache policy is payload-aware ([`RequestPayload::cacheable`]):
    /// request kinds that are issued exactly once per run — teacher
    /// generation/distillation, judge quality scoring — bypass the cache
    /// entirely (no key hashed, nothing retained), since every such entry
    /// would be written and never read. Their ledger accounting is
    /// unchanged: a bypassed request is a backend call, exactly as it was
    /// when it was a guaranteed cache miss.
    fn cached_complete(&self, req: &ModelRequest) -> ModelResponse {
        let key = req.payload.cacheable().then(|| req.cache_key());
        if let Some(key) = key {
            if let Some(hit) = self.cache.get(key) {
                self.ledger.record_call(req.role, true, hit.tokens_in, hit.tokens_out, 0);
                return hit;
            }
        }
        let start = Instant::now();
        let response = self.endpoint.complete(req);
        let busy = start.elapsed().as_nanos() as u64;
        self.ledger.record_call(req.role, false, response.tokens_in, response.tokens_out, busy);
        if let Some(key) = key {
            self.cache.insert(key, response.clone());
        }
        response
    }
}

impl ModelEndpoint for ModelHub {
    fn backend(&self) -> &'static str {
        self.endpoint.backend()
    }

    fn complete(&self, req: &ModelRequest) -> ModelResponse {
        self.cached_complete(req)
    }

    fn complete_batch(&self, exec: &Executor, reqs: &[ModelRequest]) -> Vec<ModelResponse> {
        // Tally the submission per role it contains (a batch is normally
        // single-role, but the ledger must not depend on that).
        for role in Role::ALL {
            let n = reqs.iter().filter(|r| r.role == role).count();
            if n > 0 {
                self.ledger.record_batch(role, n);
            }
        }
        fan_out_batch(exec, reqs, |r| self.cached_complete(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{PromptPart, RequestPayload};
    use crate::sim::SimEndpoint;
    use crate::spec::{build_endpoint, ModelSpec};
    use mcqa_ontology::{Ontology, OntologyConfig};
    use std::sync::Arc;

    fn ontology() -> Arc<Ontology> {
        Arc::new(Ontology::generate(&OntologyConfig {
            seed: 42,
            entities_per_kind: 30,
            qualitative_facts: 400,
            quantitative_facts: 20,
        }))
    }

    fn grade_req(text: &str) -> ModelRequest {
        ModelRequest::new(
            vec![PromptPart::user(text)],
            RequestPayload::GradeAnswer { completion: text.into(), correct: 0, n_options: 7 },
            42,
        )
    }

    #[test]
    fn cache_short_circuits_and_matches_backend() {
        let ont = ontology();
        let hub = ModelHub::new(build_endpoint(&ModelSpec::Sim, 42, Arc::clone(&ont)));
        let bare = SimEndpoint::new(42, ont);
        let req = grade_req("Answer: A");

        let first = hub.complete(&req);
        assert_eq!(first, bare.complete(&req), "hub must not change completions");
        assert_eq!(hub.cache().len(), 1);
        let second = hub.complete(&req);
        assert_eq!(second, first, "cached response is indistinguishable");

        let judge = hub.ledger().role(crate::Role::Judge);
        assert_eq!(judge.calls, 2);
        assert_eq!(judge.cache_hits, 1);
        assert_eq!(judge.backend_calls(), 1);
    }

    #[test]
    fn once_only_payloads_bypass_the_cache_without_changing_completions() {
        use mcqa_ontology::FactId;
        let ont = ontology();
        let hub = ModelHub::new(build_endpoint(&ModelSpec::Sim, 42, Arc::clone(&ont)));
        let bare = SimEndpoint::new(42, ont);
        let fact = FactId(3);
        let req = ModelRequest::new(
            vec![PromptPart::user("generate")],
            RequestPayload::GenerateQuestion { fact, salt: "s0".into() },
            42,
        );

        let first = hub.complete(&req);
        assert_eq!(first, bare.complete(&req), "hub must not change completions");
        assert_eq!(hub.cache().len(), 0, "once-only requests retain nothing");
        // Serving the same request again is still correct (deterministic
        // backend), it just pays the backend instead of the cache.
        let second = hub.complete(&req);
        assert_eq!(second, first);
        let teacher = hub.ledger().role(crate::Role::Teacher);
        assert_eq!(teacher.calls, 2);
        assert_eq!(teacher.cache_hits, 0);
        assert_eq!(teacher.backend_calls(), 2);

        // A cacheable payload on the same hub still short-circuits.
        let grade = grade_req("Answer: B");
        hub.complete(&grade);
        hub.complete(&grade);
        assert_eq!(hub.cache().len(), 1);
        assert_eq!(hub.ledger().role(crate::Role::Judge).cache_hits, 1);
    }

    #[test]
    fn batch_goes_through_the_same_cached_path() {
        let hub = ModelHub::new(build_endpoint(&ModelSpec::Sim, 42, ontology()));
        let reqs: Vec<ModelRequest> =
            (0..20).map(|i| grade_req(&format!("Answer: {}", ['A', 'B'][i % 2]))).collect();
        let exec = Executor::global();

        let batched = hub.complete_batch(exec, &reqs);
        let serial: Vec<ModelResponse> = reqs.iter().map(|r| hub.complete(r)).collect();
        assert_eq!(batched, serial);

        let judge = hub.ledger().role(crate::Role::Judge);
        assert_eq!(judge.calls, 40, "20 batched + 20 serial");
        assert_eq!(judge.batches, 1);
        assert_eq!(judge.batched_calls, 20);
        // Only two distinct completions exist; everything else hit the cache.
        assert_eq!(hub.cache().len(), 2);
        assert_eq!(judge.backend_calls(), 2);
        assert_eq!(judge.cache_hits, 38);
    }
}
