//! Backend selection by value: [`ModelSpec`] + the [`build_endpoint`]
//! factory — the model-layer mirror of `mcqa-index`'s `IndexSpec`.
//!
//! Consumers (the pipeline config, the `repro` binary's `--models` flag)
//! carry a `ModelSpec` instead of a concrete backend type; the factory
//! turns it into a `Box<dyn ModelEndpoint>`. A future remote/HTTP backend
//! is one new variant + one factory arm — a config value, not a refactor.

use std::sync::Arc;

use mcqa_ontology::Ontology;
use serde::{Deserialize, Serialize};

use crate::endpoint::ModelEndpoint;
use crate::hub::ModelHub;
use crate::sim::SimEndpoint;

/// Which model backend serves the workspace's roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// The calibrated behavioural simulators (the only offline backend).
    Sim,
}

// Not `#[derive(Default)]`: the offline serde derive shim parses the enum
// body itself and does not understand the `#[default]` variant attribute.
#[allow(clippy::derivable_impls)]
impl Default for ModelSpec {
    fn default() -> Self {
        ModelSpec::Sim
    }
}

impl ModelSpec {
    /// The lowercase backend label, as accepted by [`ModelSpec::parse`]
    /// and the `repro --models` flag.
    pub fn label(&self) -> &'static str {
        match self {
            ModelSpec::Sim => "sim",
        }
    }

    /// Parse a backend label. `None` for unknown labels.
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "sim" => Some(ModelSpec::Sim),
            _ => None,
        }
    }
}

/// Build the backend `spec` names. `seed` seeds the generation-side
/// simulators; `ontology` is the ground truth the sim teacher realises
/// questions from.
pub fn build_endpoint(
    spec: &ModelSpec,
    seed: u64,
    ontology: Arc<Ontology>,
) -> Box<dyn ModelEndpoint> {
    match spec {
        ModelSpec::Sim => Box::new(SimEndpoint::new(seed, ontology)),
    }
}

/// [`build_endpoint`], with the cross-cutting services (response cache +
/// call ledger) already stacked on top.
pub fn build_hub(spec: &ModelSpec, seed: u64, ontology: Arc<Ontology>) -> ModelHub {
    ModelHub::new(build_endpoint(spec, seed, ontology))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcqa_ontology::OntologyConfig;

    #[test]
    fn labels_roundtrip() {
        assert_eq!(ModelSpec::parse("sim"), Some(ModelSpec::Sim));
        assert_eq!(ModelSpec::Sim.label(), "sim");
        assert!(ModelSpec::parse("gpt-4.1").is_none());
        assert_eq!(ModelSpec::default(), ModelSpec::Sim);
    }

    #[test]
    fn serde_roundtrip() {
        let s = serde_json::to_string(&ModelSpec::Sim).unwrap();
        let back: ModelSpec = serde_json::from_str(&s).unwrap();
        assert_eq!(back, ModelSpec::Sim);
    }

    #[test]
    fn factory_builds_the_sim_backend() {
        let ontology = Arc::new(Ontology::generate(&OntologyConfig {
            seed: 1,
            entities_per_kind: 30,
            qualitative_facts: 400,
            quantitative_facts: 20,
        }));
        let ep = build_endpoint(&ModelSpec::Sim, 1, Arc::clone(&ontology));
        assert_eq!(ep.backend(), "sim");
        let hub = build_hub(&ModelSpec::Sim, 1, ontology);
        assert_eq!(crate::ModelEndpoint::backend(&hub), "sim");
        assert!(hub.cache().is_empty());
    }
}
