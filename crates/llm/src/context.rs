//! Retrieved-context assembly and context-window truncation.
//!
//! This is the mechanistic heart of the paper's small-model result: a
//! retrieval hit only helps if the supporting passage *survives prompt
//! truncation*. Five ~250-token chunks plus the question overflow a 2K
//! window; five ~80-token traces do not. The truncation here is real token
//! accounting, not a parameter.

use mcqa_ontology::FactId;
use serde::{Deserialize, Serialize};

use crate::mcq::McqItem;
use crate::trace::TraceMode;

/// Where a retrieved passage came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PassageSource {
    /// A paper-derived semantic chunk.
    Chunk,
    /// A reasoning trace in the given mode.
    Trace(TraceMode),
}

/// One retrieved passage handed to a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Passage {
    /// Passage text (injected into the prompt).
    pub text: String,
    /// Source type.
    pub source: PassageSource,
    /// Ground truth: the fact this passage states/supports, if any.
    /// (Filled by the evaluator from the corpus/trace oracle; the model
    /// only "sees" the text, but the simulator needs the label to decide
    /// whether extraction is possible.)
    pub supports: Option<FactId>,
    /// Retrieval score (for ordering diagnostics).
    pub score: f32,
}

/// The context actually visible to the model after truncation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssembledContext {
    /// Passages fully inside the window, in retrieval order.
    pub passages_in_window: usize,
    /// Passages supplied by retrieval.
    pub passages_total: usize,
    /// True when a passage supporting the question's fact survived
    /// truncation (a *usable* hit).
    pub relevant_in_window: bool,
    /// True when retrieval returned a supporting passage at all (hit
    /// before truncation) — the difference to `relevant_in_window` is
    /// pure window loss.
    pub relevant_retrieved: bool,
    /// Prompt tokens consumed (stem + options + surviving passages).
    pub prompt_tokens: usize,
}

/// Fixed prompt-scaffold overhead (instructions, separators) in tokens.
const SCAFFOLD_TOKENS: usize = 48;

/// Assemble a prompt for `item` from retrieved `passages` under a
/// `context_window` budget.
///
/// Layout mirrors the usual RAG prompt: scaffold + passages (retrieval
/// order) + question + options. Passages that do not fit *entirely* are
/// dropped (partial evidence is useless for MCQ extraction); the question
/// itself is always kept (models see the question even when context must
/// be truncated away).
pub fn assemble(item: &McqItem, passages: &[Passage], context_window: usize) -> AssembledContext {
    let question_tokens = mcqa_text::token_count(&item.render());
    let budget = context_window.saturating_sub(question_tokens + SCAFFOLD_TOKENS);

    let mut used = 0usize;
    let mut in_window = 0usize;
    let mut relevant_in_window = false;
    let mut relevant_retrieved = false;
    for p in passages {
        let is_relevant = p.supports == Some(item.fact);
        relevant_retrieved |= is_relevant;
        let t = mcqa_text::token_count(&p.text);
        if used + t <= budget {
            used += t;
            in_window += 1;
            relevant_in_window |= is_relevant;
        }
        // Passages after an overflow are still skipped individually —
        // a shorter later passage may fit (greedy packing in rank order).
    }

    AssembledContext {
        passages_in_window: in_window,
        passages_total: passages.len(),
        relevant_in_window,
        relevant_retrieved,
        prompt_tokens: question_tokens + SCAFFOLD_TOKENS + used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcq::BenchKind;

    fn item() -> McqItem {
        McqItem {
            qid: 1,
            bench: BenchKind::Synthetic,
            fact: FactId(42),
            stem: "Which pathway is activated by TRK2 following irradiation?".into(),
            options: (0..7).map(|i| format!("option number {i}")).collect(),
            correct: 0,
            difficulty: 0.3,
            is_math: false,
        }
    }

    fn passage(words: usize, supports: Option<FactId>) -> Passage {
        Passage {
            text: (0..words).map(|i| format!("w{i}")).collect::<Vec<_>>().join(" "),
            source: PassageSource::Chunk,
            supports,
            score: 0.9,
        }
    }

    #[test]
    fn everything_fits_in_large_window() {
        let ps = vec![passage(200, Some(FactId(42))), passage(200, None)];
        let ctx = assemble(&item(), &ps, 32_768);
        assert_eq!(ctx.passages_in_window, 2);
        assert!(ctx.relevant_in_window);
        assert!(ctx.relevant_retrieved);
        assert!(ctx.prompt_tokens > 400);
    }

    #[test]
    fn truncation_drops_late_passages() {
        // Window fits question + scaffold + ~one 200-token passage.
        let q_tokens = mcqa_text::token_count(&item().render());
        let window = q_tokens + 48 + 250;
        let ps = vec![
            passage(200, None),             // rank 1: fits
            passage(200, Some(FactId(42))), // rank 2: dropped → hit lost to truncation
        ];
        let ctx = assemble(&item(), &ps, window);
        assert_eq!(ctx.passages_in_window, 1);
        assert!(ctx.relevant_retrieved, "retrieval found it");
        assert!(!ctx.relevant_in_window, "but the window lost it");
    }

    #[test]
    fn short_traces_survive_where_chunks_die() {
        let q_tokens = mcqa_text::token_count(&item().render());
        let window = q_tokens + 48 + 300;
        // Five 250-token chunks: only the first fits.
        let chunks: Vec<Passage> = (0..5).map(|_| passage(250, None)).collect();
        let c1 = assemble(&item(), &chunks, window);
        assert_eq!(c1.passages_in_window, 1);
        // Five 50-token traces: all fit... budget 300 → 6 × 50 = 300 fits 5.
        let traces: Vec<Passage> = (0..5)
            .map(|i| Passage {
                text: (0..50).map(|j| format!("t{j}")).collect::<Vec<_>>().join(" "),
                source: PassageSource::Trace(TraceMode::Efficient),
                supports: if i == 4 { Some(FactId(42)) } else { None },
                score: 0.8,
            })
            .collect();
        let c2 = assemble(&item(), &traces, window);
        assert_eq!(c2.passages_in_window, 5);
        assert!(c2.relevant_in_window, "trace at rank 5 still usable");
    }

    #[test]
    fn greedy_packing_takes_later_shorter_passage() {
        let q_tokens = mcqa_text::token_count(&item().render());
        let window = q_tokens + 48 + 100;
        let ps = vec![passage(200, None), passage(80, Some(FactId(42)))];
        let ctx = assemble(&item(), &ps, window);
        assert_eq!(ctx.passages_in_window, 1, "the shorter rank-2 passage fits");
        assert!(ctx.relevant_in_window);
    }

    #[test]
    fn zero_passages() {
        let ctx = assemble(&item(), &[], 2048);
        assert_eq!(ctx.passages_total, 0);
        assert!(!ctx.relevant_retrieved);
        assert!(!ctx.relevant_in_window);
    }

    #[test]
    fn tiny_window_keeps_question_only() {
        let ps = vec![passage(100, Some(FactId(42)))];
        let ctx = assemble(&item(), &ps, 10);
        assert_eq!(ctx.passages_in_window, 0);
        assert!(!ctx.relevant_in_window);
    }

    #[test]
    fn irrelevant_passage_supporting_other_fact() {
        let ps = vec![passage(50, Some(FactId(7)))];
        let ctx = assemble(&item(), &ps, 4096);
        assert!(!ctx.relevant_retrieved, "supports a different fact");
        assert_eq!(ctx.passages_in_window, 1);
    }
}
