//! The teacher model: GPT-4.1's two roles, simulated.
//!
//! 1. **MCQ generation** from a chunk-identified fact (paper §2): a stem
//!    realised from the fact, one correct option, six same-kind
//!    distractors, all shuffled deterministically. Real teacher defects
//!    are injected at realistic rates — stems that reference the source
//!    text ("as described in the passage"), ambiguous stems, and
//!    occasional wrong keys. The judge's 7/10 filter exists *because* of
//!    these defects.
//! 2. **Reasoning-trace distillation** (paper §2, Figure 3): three modes
//!    generated simultaneously, with the final answer scrubbed to prevent
//!    leakage — enforced here by construction *and* by a post-check.

use mcqa_ontology::{realize, Fact, Ontology};
use mcqa_util::KeyedStochastic;
use serde::{Deserialize, Serialize};

use crate::mcq::OPTION_LETTERS;
use crate::trace::TraceMode;

/// Defects a generated question can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuestionDefect {
    /// The stem refers to "the passage/text" — not self-contained.
    ContextReference,
    /// The stem lost its subject and became ambiguous.
    AmbiguousStem,
    /// The recorded key does not match the true answer.
    WrongKey,
}

/// A candidate question as emitted by the teacher.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedQuestion {
    /// The supporting fact.
    pub fact: mcqa_ontology::FactId,
    /// Question stem.
    pub stem: String,
    /// Seven options in display order.
    pub options: Vec<String>,
    /// The key the teacher *recorded* (wrong when `WrongKey` defect hit).
    pub recorded_key: usize,
    /// The actually-correct option index (ground truth).
    pub true_key: usize,
    /// Injected defects.
    pub defects: Vec<QuestionDefect>,
    /// Distractor plausibility in `[0,1]` (drives judge scoring).
    pub distractor_plausibility: f64,
}

/// Teacher configuration (defect base rates measured from real LLM
/// question-generation audits; order-of-magnitude realistic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TeacherConfig {
    /// Seed.
    pub seed: u64,
    /// P(stem references the source text).
    pub p_context_reference: f64,
    /// P(stem loses its subject).
    pub p_ambiguous: f64,
    /// P(recorded key is wrong).
    pub p_wrong_key: f64,
}

impl Default for TeacherConfig {
    fn default() -> Self {
        Self { seed: 42, p_context_reference: 0.08, p_ambiguous: 0.06, p_wrong_key: 0.02 }
    }
}

/// The simulated GPT-4.1.
#[derive(Debug, Clone)]
pub struct TeacherModel {
    config: TeacherConfig,
}

impl TeacherModel {
    /// Create a teacher.
    pub fn new(config: TeacherConfig) -> Self {
        Self { config }
    }

    /// Generate a 7-option MCQ for `fact`. `salt` distinguishes multiple
    /// questions over the same fact (different chunks).
    pub fn generate_question(
        &self,
        ontology: &Ontology,
        fact: &Fact,
        salt: &str,
    ) -> GeneratedQuestion {
        let rng = KeyedStochastic::new(self.config.seed ^ 0x7EAC_4E12);
        let key = format!("{}:{}", fact.id.0, salt);
        let reg = ontology.registry();

        let (mut stem, answer) = realize::question(fact, reg, realize::QuestionStyle::Synthetic);
        let distractors = ontology.distractors(fact, 6, salt);
        let mut options: Vec<String> = vec![answer.clone()];
        options.extend(distractors.iter().map(|d| reg.get(*d).name.clone()));

        // Deterministic shuffle.
        let perm = rng.permutation(options.len(), &["shuffle", &key]);
        let shuffled: Vec<String> = perm.iter().map(|&i| options[i].clone()).collect();
        let true_key = perm.iter().position(|&i| i == 0).expect("answer present");
        let options = shuffled;

        // Defects.
        let mut defects = Vec::new();
        if rng.bernoulli(self.config.p_context_reference, &["ctxref", &key]) {
            defects.push(QuestionDefect::ContextReference);
            stem = format!("As described in the passage, {}", lowercase_first(&stem));
        }
        if rng.bernoulli(self.config.p_ambiguous, &["ambig", &key]) {
            defects.push(QuestionDefect::AmbiguousStem);
            let subject = &reg.get(fact.subject).name;
            stem = stem.replace(subject.as_str(), "this factor");
        }
        let mut recorded_key = true_key;
        if rng.bernoulli(self.config.p_wrong_key, &["wrongkey", &key]) {
            defects.push(QuestionDefect::WrongKey);
            recorded_key =
                (true_key + 1 + rng.below(options.len() - 1, &["wk", &key])) % options.len();
        }

        let distractor_plausibility = 0.4 + 0.6 * rng.uniform(&["plaus", &key]);

        GeneratedQuestion {
            fact: fact.id,
            stem,
            options,
            recorded_key,
            true_key,
            defects,
            distractor_plausibility,
        }
    }

    /// Distil a reasoning trace for a question in `mode`, with the final
    /// answer excluded (the paper's leakage control).
    ///
    /// The returned text never contains the correct option's string; a
    /// debug assertion and a scrubbing pass enforce this.
    pub fn generate_trace(
        &self,
        ontology: &Ontology,
        question: &GeneratedQuestion,
        mode: TraceMode,
    ) -> String {
        let reg = ontology.registry();
        let fact = ontology.fact(question.fact);
        let answer_text = question.options[question.true_key].clone();

        let (subject, topic_kw, verb) = match fact {
            Some(f) => (
                reg.get(f.subject).name.clone(),
                f.topic.keywords()[0].to_string(),
                f.relation.verb().to_string(),
            ),
            None => {
                ("the subject".to_string(), "the mechanism".to_string(), "relates to".to_string())
            }
        };

        // Named eliminations: distractor options only, never the answer.
        let eliminated: Vec<(char, &String)> = question
            .options
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != question.true_key)
            .map(|(i, o)| (OPTION_LETTERS[i], o))
            .collect();

        let mut text = match mode {
            TraceMode::Detailed => {
                let mut t = format!(
                    "Question restated: {} The key consideration is how {subject} {verb} its target \
                     in the context of {topic_kw}. Analysing each option: ",
                    question.stem
                );
                for (letter, opt) in eliminated.iter().take(4) {
                    t.push_str(&format!(
                        "Option {letter} ({opt}) can be excluded because it is not the established \
                         partner of {subject} in this setting. "
                    ));
                }
                t.push_str(
                    "The remaining option is consistent with the mechanism above; \
                     final answer withheld.",
                );
                t
            }
            TraceMode::Focused => {
                let mut t =
                    format!("Principle: {subject} {verb} a specific partner within {topic_kw}. ",);
                for (letter, opt) in eliminated.iter().take(2) {
                    t.push_str(&format!("Eliminate {letter} ({opt}): wrong class of effect. "));
                }
                t.push_str(&format!(
                    "The correct choice follows directly from the {topic_kw} relationship; \
                     final answer withheld. Context: {}",
                    question.stem
                ));
                t
            }
            TraceMode::Efficient => format!(
                "{} Reason: {subject} {verb} exactly one option here; recall the {topic_kw} \
                 relationship. Final answer withheld.",
                question.stem
            ),
        };

        // Leakage scrub: the answer string must never appear.
        if text.contains(&answer_text) {
            text = text.replace(&answer_text, "[withheld]");
        }
        debug_assert!(!text.contains(&answer_text));
        text
    }
}

fn lowercase_first(s: &str) -> String {
    let mut cs = s.chars();
    match cs.next() {
        Some(c) => c.to_lowercase().collect::<String>() + cs.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcqa_ontology::OntologyConfig;

    fn ontology() -> Ontology {
        Ontology::generate(&OntologyConfig {
            seed: 42,
            entities_per_kind: 30,
            qualitative_facts: 400,
            quantitative_facts: 20,
        })
    }

    #[test]
    fn question_structure_valid() {
        let ont = ontology();
        let teacher = TeacherModel::new(TeacherConfig::default());
        for fact in ont.facts().iter().take(100) {
            let q = teacher.generate_question(&ont, fact, "c0");
            assert_eq!(q.options.len(), 7);
            assert!(q.true_key < 7);
            assert!(q.recorded_key < 7);
            // Correct option is the fact's object.
            let obj_name = &ont.registry().get(fact.object).name;
            assert_eq!(&q.options[q.true_key], obj_name);
            // Options unique.
            let set: std::collections::HashSet<&String> = q.options.iter().collect();
            assert_eq!(set.len(), 7, "{:?}", q.options);
        }
    }

    #[test]
    fn deterministic_per_salt() {
        let ont = ontology();
        let teacher = TeacherModel::new(TeacherConfig::default());
        let f = &ont.facts()[0];
        assert_eq!(
            teacher.generate_question(&ont, f, "a"),
            teacher.generate_question(&ont, f, "a")
        );
        assert_ne!(
            teacher.generate_question(&ont, f, "a").options,
            teacher.generate_question(&ont, f, "b").options,
        );
    }

    #[test]
    fn defect_rates_realistic() {
        let ont = ontology();
        let teacher = TeacherModel::new(TeacherConfig::default());
        let mut ctxref = 0;
        let mut wrongkey = 0;
        let n = ont.facts().len();
        for fact in ont.facts() {
            let q = teacher.generate_question(&ont, fact, "c0");
            if q.defects.contains(&QuestionDefect::ContextReference) {
                ctxref += 1;
                assert!(q.stem.contains("passage"), "{}", q.stem);
            }
            if q.defects.contains(&QuestionDefect::WrongKey) {
                wrongkey += 1;
                assert_ne!(q.recorded_key, q.true_key);
            }
        }
        let fr = ctxref as f64 / n as f64;
        let fw = wrongkey as f64 / n as f64;
        assert!((fr - 0.08).abs() < 0.04, "context-reference rate {fr}");
        assert!(fw < 0.06, "wrong-key rate {fw}");
    }

    #[test]
    fn traces_never_leak_answer() {
        let ont = ontology();
        let teacher = TeacherModel::new(TeacherConfig::default());
        for fact in ont.facts().iter().take(150) {
            let q = teacher.generate_question(&ont, fact, "c0");
            let answer = &q.options[q.true_key];
            for mode in TraceMode::ALL {
                let t = teacher.generate_trace(&ont, &q, mode);
                assert!(
                    !t.contains(answer.as_str()),
                    "{mode:?} trace leaks answer {answer:?}: {t}"
                );
                assert!(t.len() > 40);
            }
        }
    }

    #[test]
    fn trace_lengths_ordered_by_mode() {
        // Detailed > Focused > Efficient in tokens (drives the truncation
        // dynamics for small-window models).
        let ont = ontology();
        let teacher = TeacherModel::new(TeacherConfig::default());
        let mut totals = [0usize; 3];
        for fact in ont.facts().iter().take(50) {
            let q = teacher.generate_question(&ont, fact, "c0");
            for (i, mode) in TraceMode::ALL.iter().enumerate() {
                totals[i] += mcqa_text::token_count(&teacher.generate_trace(&ont, &q, *mode));
            }
        }
        assert!(totals[0] > totals[1], "detailed > focused: {totals:?}");
        assert!(totals[1] > totals[2], "focused > efficient: {totals:?}");
    }

    #[test]
    fn traces_share_vocabulary_with_question() {
        // Retrieval works because the trace embeds the question's words.
        let ont = ontology();
        let teacher = TeacherModel::new(TeacherConfig::default());
        let q = teacher.generate_question(&ont, &ont.facts()[3], "c0");
        for mode in TraceMode::ALL {
            let t = teacher.generate_trace(&ont, &q, mode);
            let j = mcqa_text::similarity::token_jaccard(&q.stem, &t);
            assert!(j > 0.1, "{mode:?}: jaccard {j} too low for retrieval");
        }
    }
}
