//! Behaviour cards for the eight evaluated SLMs (paper Table 1) plus their
//! measured accuracy targets (paper Tables 2–4).
//!
//! A card mixes two kinds of numbers:
//!
//! * **Structural parameters**, chosen a-priori from public knowledge of
//!   each model (context window from Table 1; answer-format reliability
//!   and distraction susceptibility from the qualitative behaviour the
//!   paper reports — e.g. TinyLlama's sub-random Astro baseline of 0.089
//!   implies frequent unparseable answers, and OLMo's chunk-RAG collapse
//!   on the exam, 0.446 → 0.269, implies high distractibility).
//! * **Behavioural targets** — the paper's own table cells, used by
//!   [`crate::solver::resolve`] to invert the answer cascade into forward
//!   simulation parameters under *measured* retrieval rates.

use serde::{Deserialize, Serialize};

/// Astro exam question accounting (paper §2.2): 337 questions, 2 excluded
/// as multimodal, 146 of the remaining 335 classified as mathematical.
pub const ASTRO_TOTAL_RAW: usize = 337;
/// Questions evaluated after excluding the two multimodal items.
pub const ASTRO_EVALUATED: usize = 335;
/// The no-math subset size.
pub const ASTRO_NOMATH: usize = 189;
/// The math subset size.
pub const ASTRO_MATH: usize = ASTRO_EVALUATED - ASTRO_NOMATH;

/// GPT-4's reference accuracy on the 2023 Astro exam, from the paper's
/// cited comparison (Beattie et al. 2024 \[5\]). The paper claims several
/// SLMs with reasoning-trace RAG "surpass GPT-4"; this constant draws that
/// reference line in the Table 3 reproduction.
pub const GPT4_ASTRO_REFERENCE: f64 = 0.60;

/// Accuracy targets lifted from the paper's Tables 2–4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchTargets {
    /// Table 2: synthetic baseline.
    pub synth_baseline: f64,
    /// Table 2: synthetic RAG-chunks.
    pub synth_chunks: f64,
    /// Table 2: synthetic RAG-RT `[detailed, focused, efficient]`.
    pub synth_rt: [f64; 3],
    /// Table 3: Astro (all 335) baseline.
    pub astro_all_baseline: f64,
    /// Table 3: Astro (all) RAG-chunks.
    pub astro_all_chunks: f64,
    /// Table 3: Astro (all) best reasoning-trace mode.
    pub astro_all_rt_best: f64,
    /// Table 4: Astro no-math baseline.
    pub astro_nomath_baseline: f64,
    /// Table 4: Astro no-math RAG-chunks.
    pub astro_nomath_chunks: f64,
    /// Table 4: Astro no-math best reasoning-trace mode.
    pub astro_nomath_rt_best: f64,
}

impl BenchTargets {
    /// Infer the math-subset accuracy implied by a (Table 3, Table 4) pair:
    /// `335·all = 189·nomath + 146·math`.
    pub fn implied_math(all: f64, nomath: f64) -> f64 {
        ((ASTRO_EVALUATED as f64) * all - (ASTRO_NOMATH as f64) * nomath) / ASTRO_MATH as f64
    }

    /// Math-subset accuracy under (baseline, chunks, best-RT), clamped.
    pub fn math_targets(&self) -> [f64; 3] {
        [
            Self::implied_math(self.astro_all_baseline, self.astro_nomath_baseline).clamp(0.0, 1.0),
            Self::implied_math(self.astro_all_chunks, self.astro_nomath_chunks).clamp(0.0, 1.0),
            Self::implied_math(self.astro_all_rt_best, self.astro_nomath_rt_best).clamp(0.0, 1.0),
        ]
    }
}

/// A full model card.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModelCard {
    /// Display name (paper Table 1).
    pub name: &'static str,
    /// Parameter count in billions (Table 1).
    pub params_b: f64,
    /// Release year (Table 1).
    pub release_year: u16,
    /// Context window in tokens (Table 1) — drives real prompt truncation.
    pub context_window: usize,
    /// P(answer is well-formed) on pipeline-style questions.
    pub format_synth: f64,
    /// P(answer is well-formed) on exam-style questions.
    pub format_exam: f64,
    /// Distractor-elimination skill in `[0, 1)`: fraction of wrong options
    /// the model can rule out before guessing.
    pub elimination: f64,
    /// P(irrelevant retrieved context overrides the model's own knowledge).
    pub distraction: f64,
    /// Accuracy targets from the paper's tables.
    pub targets: BenchTargets,
}

impl ModelCard {
    /// Residual guess probability with `n` options after elimination.
    pub fn guess_prob(&self, n: usize) -> f64 {
        let remaining = n as f64 - self.elimination * (n as f64 - 1.0);
        1.0 / remaining.max(1.0)
    }
}

/// The eight evaluated models, in the paper's table order.
pub const MODEL_CARDS: [ModelCard; 8] = [
    ModelCard {
        name: "OLMo-7B",
        params_b: 7.0,
        release_year: 2024,
        context_window: 2048,
        format_synth: 0.98,
        format_exam: 0.97,
        // Weak instruction follower; near-zero elimination skill.
        elimination: 0.10,
        // Table 3's 0.446 → 0.269 chunk collapse ⇒ extreme distractibility.
        distraction: 0.85,
        targets: BenchTargets {
            synth_baseline: 0.380,
            synth_chunks: 0.443,
            synth_rt: [0.709, 0.736, 0.720],
            astro_all_baseline: 0.446,
            astro_all_chunks: 0.269,
            astro_all_rt_best: 0.563,
            astro_nomath_baseline: 0.471,
            astro_nomath_chunks: 0.238,
            astro_nomath_rt_best: 0.587,
        },
    },
    ModelCard {
        name: "TinyLlama-1.1B-Chat",
        params_b: 1.1,
        release_year: 2024,
        context_window: 2048,
        format_synth: 0.95,
        // 0.089 on a 5-option exam is far below random ⇒ most exam answers
        // are unparseable.
        format_exam: 0.45,
        elimination: 0.0,
        distraction: 0.50,
        targets: BenchTargets {
            synth_baseline: 0.176,
            synth_chunks: 0.434,
            synth_rt: [0.710, 0.699, 0.581],
            astro_all_baseline: 0.089,
            astro_all_chunks: 0.263,
            astro_all_rt_best: 0.319,
            astro_nomath_baseline: 0.138,
            astro_nomath_chunks: 0.259,
            astro_nomath_rt_best: 0.312,
        },
    },
    ModelCard {
        name: "Gemma 3 4B-IT",
        params_b: 4.0,
        release_year: 2025,
        context_window: 128_000,
        format_synth: 1.0,
        format_exam: 0.99,
        elimination: 0.40,
        distraction: 0.15,
        targets: BenchTargets {
            synth_baseline: 0.745,
            synth_chunks: 0.837,
            synth_rt: [0.860, 0.878, 0.873],
            astro_all_baseline: 0.484,
            astro_all_chunks: 0.551,
            astro_all_rt_best: 0.605,
            astro_nomath_baseline: 0.540,
            astro_nomath_chunks: 0.640,
            astro_nomath_rt_best: 0.804,
        },
    },
    ModelCard {
        name: "SmolLM3-3B",
        params_b: 3.0,
        release_year: 2025,
        context_window: 32_768,
        format_synth: 0.99,
        format_exam: 0.98,
        elimination: 0.30,
        distraction: 0.10,
        targets: BenchTargets {
            synth_baseline: 0.471,
            synth_chunks: 0.803,
            synth_rt: [0.826, 0.854, 0.856],
            astro_all_baseline: 0.377,
            astro_all_chunks: 0.706,
            astro_all_rt_best: 0.772,
            astro_nomath_baseline: 0.466,
            astro_nomath_chunks: 0.751,
            astro_nomath_rt_best: 0.894,
        },
    },
    ModelCard {
        name: "Mistral-7B-Instruct-v0.3",
        params_b: 7.0,
        release_year: 2024,
        context_window: 4096,
        format_synth: 1.0,
        format_exam: 0.99,
        elimination: 0.40,
        distraction: 0.25,
        targets: BenchTargets {
            synth_baseline: 0.737,
            synth_chunks: 0.839,
            synth_rt: [0.886, 0.889, 0.882],
            astro_all_baseline: 0.494,
            astro_all_chunks: 0.542,
            astro_all_rt_best: 0.575,
            astro_nomath_baseline: 0.598,
            astro_nomath_chunks: 0.614,
            astro_nomath_rt_best: 0.757,
        },
    },
    ModelCard {
        name: "Llama-3-8B-Instruct",
        params_b: 8.0,
        release_year: 2024,
        context_window: 8192,
        format_synth: 1.0,
        format_exam: 1.0,
        elimination: 0.50,
        // Table 3 shows its best-RT *below* baseline (0.665 → 0.542):
        // retrieved rationales interfere, especially on math items.
        distraction: 0.35,
        targets: BenchTargets {
            synth_baseline: 0.830,
            synth_chunks: 0.864,
            synth_rt: [0.875, 0.892, 0.897],
            astro_all_baseline: 0.665,
            astro_all_chunks: 0.674,
            astro_all_rt_best: 0.542,
            astro_nomath_baseline: 0.757,
            astro_nomath_chunks: 0.730,
            astro_nomath_rt_best: 0.804,
        },
    },
    ModelCard {
        name: "Llama-3.1-8B-Instruct",
        params_b: 8.0,
        release_year: 2024,
        context_window: 32_768,
        format_synth: 1.0,
        format_exam: 1.0,
        elimination: 0.50,
        distraction: 0.10,
        targets: BenchTargets {
            synth_baseline: 0.819,
            synth_chunks: 0.900,
            synth_rt: [0.915, 0.902, 0.916],
            astro_all_baseline: 0.644,
            astro_all_chunks: 0.704,
            astro_all_rt_best: 0.686,
            astro_nomath_baseline: 0.762,
            astro_nomath_chunks: 0.783,
            astro_nomath_rt_best: 0.857,
        },
    },
    ModelCard {
        name: "Qwen1.5-14B-Chat",
        params_b: 14.0,
        release_year: 2024,
        context_window: 32_768,
        format_synth: 1.0,
        format_exam: 0.99,
        elimination: 0.45,
        distraction: 0.15,
        targets: BenchTargets {
            synth_baseline: 0.776,
            synth_chunks: 0.853,
            synth_rt: [0.913, 0.908, 0.914],
            astro_all_baseline: 0.560,
            astro_all_chunks: 0.587,
            astro_all_rt_best: 0.602,
            astro_nomath_baseline: 0.667,
            astro_nomath_chunks: 0.667,
            astro_nomath_rt_best: 0.825,
        },
    },
];

/// Render the Table-1 reproduction (model roster).
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>8} {:>13} {:>15}\n",
        "Model Name", "Params", "Release Year", "Context Window"
    ));
    out.push_str(&"-".repeat(68));
    out.push('\n');
    for c in &MODEL_CARDS {
        out.push_str(&format!(
            "{:<28} {:>6.1}B {:>13} {:>15}\n",
            c.name, c.params_b, c.release_year, c.context_window
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_models_in_paper_order() {
        assert_eq!(MODEL_CARDS.len(), 8);
        assert_eq!(MODEL_CARDS[0].name, "OLMo-7B");
        assert_eq!(MODEL_CARDS[7].name, "Qwen1.5-14B-Chat");
    }

    #[test]
    fn table1_values_match_paper() {
        let by_name = |n: &str| MODEL_CARDS.iter().find(|c| c.name == n).unwrap();
        assert_eq!(by_name("OLMo-7B").context_window, 2048);
        assert_eq!(by_name("TinyLlama-1.1B-Chat").params_b, 1.1);
        assert_eq!(by_name("Gemma 3 4B-IT").context_window, 128_000);
        assert_eq!(by_name("SmolLM3-3B").context_window, 32_768);
        assert_eq!(by_name("Mistral-7B-Instruct-v0.3").context_window, 4096);
        assert_eq!(by_name("Llama-3-8B-Instruct").context_window, 8192);
        assert_eq!(by_name("Llama-3.1-8B-Instruct").release_year, 2024);
        assert_eq!(by_name("Qwen1.5-14B-Chat").params_b, 14.0);
    }

    #[test]
    fn probabilities_in_range() {
        for c in &MODEL_CARDS {
            for p in [c.format_synth, c.format_exam, c.elimination, c.distraction] {
                assert!((0.0..=1.0).contains(&p), "{}: {p}", c.name);
            }
            let t = &c.targets;
            let all = [
                t.synth_baseline,
                t.synth_chunks,
                t.synth_rt[0],
                t.synth_rt[1],
                t.synth_rt[2],
                t.astro_all_baseline,
                t.astro_all_chunks,
                t.astro_all_rt_best,
                t.astro_nomath_baseline,
                t.astro_nomath_chunks,
                t.astro_nomath_rt_best,
            ];
            for v in all {
                assert!((0.0..=1.0).contains(&v), "{}: target {v}", c.name);
            }
        }
    }

    #[test]
    fn guess_prob_behaviour() {
        let olmo = &MODEL_CARDS[0];
        assert!(olmo.guess_prob(7) > 1.0 / 7.0, "elimination raises guess odds");
        assert!(olmo.guess_prob(7) < olmo.guess_prob(5));
        let tiny = &MODEL_CARDS[1];
        assert!((tiny.guess_prob(7) - 1.0 / 7.0).abs() < 1e-12, "zero elimination = uniform");
    }

    #[test]
    fn synthetic_targets_monotone_rt_over_chunks_over_baseline() {
        // The paper's headline shape on the synthetic benchmark.
        for c in &MODEL_CARDS {
            let best_rt = c.targets.synth_rt.iter().cloned().fold(0.0, f64::max);
            assert!(c.targets.synth_chunks > c.targets.synth_baseline, "{}", c.name);
            assert!(best_rt > c.targets.synth_chunks, "{}", c.name);
        }
    }

    #[test]
    fn astro_accounting() {
        assert_eq!(ASTRO_TOTAL_RAW - 2, ASTRO_EVALUATED);
        assert_eq!(ASTRO_NOMATH + ASTRO_MATH, ASTRO_EVALUATED);
        assert_eq!(ASTRO_MATH, 146);
    }

    #[test]
    fn implied_math_identity() {
        // all = (189*nomath + 146*math)/335 must invert exactly.
        let math = BenchTargets::implied_math(0.5, 0.6);
        let all = (189.0 * 0.6 + 146.0 * math) / 335.0;
        assert!((all - 0.5).abs() < 1e-12);
    }

    #[test]
    fn llama3_math_rt_collapse_is_encoded() {
        // The paper's most interesting reversal: Llama-3's math accuracy
        // under trace retrieval falls below guessing.
        let llama3 = MODEL_CARDS.iter().find(|c| c.name == "Llama-3-8B-Instruct").unwrap();
        let m = llama3.targets.math_targets();
        assert!(m[2] < m[0], "RT must hurt Llama-3 math: {m:?}");
        assert!(m[2] < 0.25);
    }

    #[test]
    fn table1_renders() {
        let t = render_table1();
        for c in &MODEL_CARDS {
            assert!(t.contains(c.name));
        }
        assert!(t.contains("128000"));
    }
}
