//! The first [`ModelEndpoint`] backend: the calibrated behavioural
//! simulators, behind the provider API.
//!
//! `SimEndpoint` owns the simulated teacher, judge, and classifier (all
//! seeded at construction, like a pinned deployment) plus the ontology the
//! teacher grounds questions in. Answer requests carry their own
//! [`crate::answer::ResolvedModel`] — calibration is an evaluation-time
//! artefact, not backend state — and their own seed.

use std::sync::Arc;

use mcqa_ontology::Ontology;

use crate::endpoint::{ModelEndpoint, ModelRequest, ModelResponse, RequestPayload, RoleOutput};
use crate::judge::JudgeModel;
use crate::math_classifier::MathClassifier;
use crate::teacher::{TeacherConfig, TeacherModel};

/// The simulator backend.
pub struct SimEndpoint {
    ontology: Arc<Ontology>,
    teacher: TeacherModel,
    judge: JudgeModel,
    classifier: MathClassifier,
}

impl SimEndpoint {
    /// Create the backend over `ontology`, seeding every simulated role
    /// from `seed` (the pipeline's master seed).
    pub fn new(seed: u64, ontology: Arc<Ontology>) -> Self {
        Self {
            ontology,
            teacher: TeacherModel::new(TeacherConfig { seed, ..Default::default() }),
            judge: JudgeModel::new(seed),
            classifier: MathClassifier::new(),
        }
    }
}

impl ModelEndpoint for SimEndpoint {
    fn backend(&self) -> &'static str {
        "sim"
    }

    fn complete(&self, req: &ModelRequest) -> ModelResponse {
        let (text, output) = match &req.payload {
            RequestPayload::GenerateQuestion { fact, salt } => {
                let f = self
                    .ontology
                    .fact(*fact)
                    .unwrap_or_else(|| panic!("sim teacher: unknown fact {}", fact.0));
                let q = self.teacher.generate_question(&self.ontology, f, salt);
                (q.stem.clone(), RoleOutput::Question(q))
            }
            RequestPayload::DistillTrace { question, mode } => {
                let t = self.teacher.generate_trace(&self.ontology, question, *mode);
                (t.clone(), RoleOutput::Trace(t))
            }
            RequestPayload::ScoreQuestion { question, salience } => {
                let j = self.judge.score_question(question, *salience);
                (j.reasoning.clone(), RoleOutput::Quality(j))
            }
            RequestPayload::GradeAnswer { completion, correct, n_options } => {
                let g = self.judge.grade(completion, *correct, *n_options);
                (g.reasoning.clone(), RoleOutput::Grade(g))
            }
            RequestPayload::ClassifyMath { item } => {
                let is_math = self.classifier.requires_math(item);
                (format!("requires_math: {is_math}"), RoleOutput::MathFlag(is_math))
            }
            RequestPayload::Rerank { query, passages } => {
                let scores = rerank_scores(query, passages);
                let text = scores.iter().map(|s| format!("{s:.4}")).collect::<Vec<_>>().join(" ");
                (text, RoleOutput::Relevance(scores))
            }
            RequestPayload::Answer { model, item, condition, context } => {
                let a = model.answer(item, *condition, context.as_ref(), req.seed);
                (a.text.clone(), RoleOutput::Answer(a))
            }
        };
        ModelResponse::from_output(req, text, output)
    }
}

/// The simulated cross-encoder: per-passage relevance as the overlap
/// cosine `|q ∩ p| / √(|q|·|p|)` over **distinct content tokens** (the
/// shared [`mcqa_text::content_tokens`] tokenisation, so the reranker
/// sees exactly the terms the lexical channel indexed). Calibrated to
/// [0, 1]: 1 for an identical token set, 0 for no shared content term.
fn rerank_scores(query: &str, passages: &[String]) -> Vec<f64> {
    let q: std::collections::HashSet<String> =
        mcqa_text::content_tokens(query).into_iter().collect();
    passages
        .iter()
        .map(|p| {
            let pt: std::collections::HashSet<String> =
                mcqa_text::content_tokens(p).into_iter().collect();
            let inter = q.intersection(&pt).count() as f64;
            let denom = ((q.len() * pt.len()) as f64).sqrt();
            if denom > 0.0 {
                inter / denom
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{PromptPart, Role};
    use mcqa_ontology::OntologyConfig;

    fn endpoint() -> SimEndpoint {
        let ontology = Arc::new(Ontology::generate(&OntologyConfig {
            seed: 42,
            entities_per_kind: 30,
            qualitative_facts: 400,
            quantitative_facts: 20,
        }));
        SimEndpoint::new(42, ontology)
    }

    #[test]
    fn serves_every_role_deterministically() {
        let ep = endpoint();
        let fact = ep.ontology.facts()[0].id;
        let gen = ModelRequest::new(
            vec![PromptPart::user("generate a question")],
            RequestPayload::GenerateQuestion { fact, salt: "c0".into() },
            42,
        );
        let a = ep.complete(&gen);
        let b = ep.complete(&gen);
        assert_eq!(a, b);
        assert_eq!(a.output.clone().expect_question().options.len(), 7);
        assert!(a.tokens_out > 0);
        assert_eq!(gen.role, Role::Teacher);

        let q = a.output.expect_question();
        let salience = ep.ontology.facts()[0].salience;
        let score = ModelRequest::new(
            vec![PromptPart::user("score it")],
            RequestPayload::ScoreQuestion { question: q.clone(), salience },
            42,
        );
        let s = ep.complete(&score);
        assert!((1..=10).contains(&s.output.expect_quality().score));

        let trace = ModelRequest::new(
            vec![PromptPart::user("distil")],
            RequestPayload::DistillTrace { question: q.clone(), mode: crate::TraceMode::Focused },
            42,
        );
        let t = ep.complete(&trace);
        assert!(!t.output.expect_trace().contains(&q.options[q.true_key]));

        let grade = ModelRequest::new(
            vec![PromptPart::user("grade")],
            RequestPayload::GradeAnswer {
                completion: "Answer: A".into(),
                correct: 0,
                n_options: 7,
            },
            42,
        );
        assert!(ep.complete(&grade).output.expect_grade().correct);
    }

    #[test]
    fn matches_direct_simulator_output() {
        // The backend is a reroute, not a reimplementation: outputs must
        // equal the wrapped simulators' exactly.
        let ep = endpoint();
        let f = &ep.ontology.facts()[3];
        let direct = ep.teacher.generate_question(&ep.ontology, f, "salt");
        let via = ep
            .complete(&ModelRequest::new(
                vec![],
                RequestPayload::GenerateQuestion { fact: f.id, salt: "salt".into() },
                42,
            ))
            .output
            .expect_question();
        assert_eq!(via, direct);
    }

    #[test]
    fn rerank_scores_are_deterministic_and_calibrated() {
        let ep = endpoint();
        let req = ModelRequest::new(
            vec![PromptPart::user("rerank")],
            RequestPayload::Rerank {
                query: "the spectral flux of the nebula".into(),
                passages: vec![
                    "the spectral flux of the nebula".into(), // identical content
                    "spectral measurements of a distant galaxy".into(), // partial overlap
                    "unrelated culinary text about bread".into(), // no overlap
                    "".into(),                                // degenerate
                ],
            },
            42,
        );
        let a = ep.complete(&req);
        let b = ep.complete(&req);
        assert_eq!(a, b);
        let scores = a.output.expect_relevance();
        assert_eq!(scores.len(), 4);
        // Calibration: identical token set scores exactly 1, empty scores 0,
        // everything lands in [0, 1], and more overlap scores higher.
        assert_eq!(scores[0], 1.0);
        assert!(scores[1] > scores[2]);
        assert_eq!(scores[3], 0.0);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
        assert_eq!(req.role, Role::Reranker);
    }

    #[test]
    #[should_panic(expected = "unknown fact")]
    fn unknown_fact_is_loud() {
        let ep = endpoint();
        ep.complete(&ModelRequest::new(
            vec![],
            RequestPayload::GenerateQuestion {
                fact: mcqa_ontology::FactId(u64::MAX),
                salt: "x".into(),
            },
            42,
        ));
    }
}
