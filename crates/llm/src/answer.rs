//! The forward answer cascade: a calibrated model answering one MCQ.

use mcqa_util::KeyedStochastic;
use serde::{Deserialize, Serialize};

use crate::cards::ModelCard;
use crate::context::AssembledContext;
use crate::mcq::{BenchKind, McqItem, OPTION_LETTERS};
use crate::solver::Calibration;
use crate::trace::TraceMode;

/// Which retrieval condition an answer was produced under (None =
/// baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Condition {
    /// Direct prompting, no retrieval.
    Baseline,
    /// RAG from paper chunks.
    RagChunks,
    /// RAG from reasoning traces of the given mode.
    RagTraces(TraceMode),
}

impl Condition {
    /// Label used in tables and reports.
    pub fn label(self) -> String {
        match self {
            Condition::Baseline => "baseline".to_string(),
            Condition::RagChunks => "rag-chunks".to_string(),
            Condition::RagTraces(m) => format!("rag-rt-{}", m.label()),
        }
    }

    /// All five evaluation conditions in the paper's column order.
    pub fn all() -> [Condition; 5] {
        [
            Condition::Baseline,
            Condition::RagChunks,
            Condition::RagTraces(TraceMode::Detailed),
            Condition::RagTraces(TraceMode::Focused),
            Condition::RagTraces(TraceMode::Efficient),
        ]
    }
}

/// The outcome of one answer attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnswerOutcome {
    /// Chosen option index (`None` when the output was unparseable).
    pub chosen: Option<usize>,
    /// The raw completion text (what the grading judge sees).
    pub text: String,
    /// Diagnostics: the model "knew" the fact.
    pub knew: bool,
    /// Diagnostics: the answer came from extracted context.
    pub used_context: bool,
}

/// A model card joined with its calibration — ready to answer questions.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResolvedModel {
    /// The behaviour card.
    pub card: ModelCard,
    /// Calibrated forward parameters.
    pub cal: Calibration,
}

impl ResolvedModel {
    /// P(model knows the fact behind `item`), difficulty-modulated.
    fn p_know(&self, item: &McqItem) -> f64 {
        let k = match item.bench {
            BenchKind::Synthetic => self.cal.k_synth,
            BenchKind::AstroExam => self.cal.k_exam,
        };
        // Mild difficulty modulation, mean 1.0 over d ~ U(0,1).
        (k * (1.1 - 0.2 * item.difficulty)).clamp(0.0, 1.0)
    }

    fn format_reliability(&self, bench: BenchKind) -> f64 {
        match bench {
            BenchKind::Synthetic => self.card.format_synth,
            BenchKind::AstroExam => self.card.format_exam,
        }
    }

    fn extraction(&self, bench: BenchKind, cond: Condition) -> f64 {
        match (bench, cond) {
            (_, Condition::Baseline) => 0.0,
            (BenchKind::Synthetic, Condition::RagChunks) => self.cal.e_synth_chunk,
            (BenchKind::Synthetic, Condition::RagTraces(m)) => {
                self.cal.e_synth_trace[TraceMode::ALL.iter().position(|x| *x == m).expect("mode")]
            }
            (BenchKind::AstroExam, Condition::RagChunks) => self.cal.e_exam_chunk,
            (BenchKind::AstroExam, Condition::RagTraces(m)) => {
                self.cal.e_exam_trace[TraceMode::ALL.iter().position(|x| *x == m).expect("mode")]
            }
        }
    }

    /// Math-question accuracy under `cond` (encodes the empirical
    /// interference effects from Tables 3/4, e.g. Llama-3's RT collapse).
    fn math_accuracy(&self, cond: Condition) -> f64 {
        match cond {
            Condition::Baseline => self.cal.math[0],
            Condition::RagChunks => self.cal.math[1],
            Condition::RagTraces(_) => self.cal.math[2],
        }
    }

    /// Answer one item deterministically (keyed on seed/model/question/
    /// condition).
    pub fn answer(
        &self,
        item: &McqItem,
        cond: Condition,
        context: Option<&AssembledContext>,
        seed: u64,
    ) -> AnswerOutcome {
        let ks = KeyedStochastic::new(seed ^ 0x0511_7A25);
        let q = item.qid.to_string();
        let c = cond.label();
        let key = |what: &str| -> [String; 4] {
            [what.to_string(), self.card.name.to_string(), q.clone(), c.clone()]
        };
        let bern = |what: &str, p: f64| {
            let k = key(what);
            let parts: Vec<&str> = k.iter().map(String::as_str).collect();
            ks.bernoulli(p, &parts)
        };
        let pick = |what: &str, n: usize| {
            let k = key(what);
            let parts: Vec<&str> = k.iter().map(String::as_str).collect();
            ks.below(n, &parts)
        };

        let n = item.options.len();

        // Math questions run a separate (empirically calibrated) channel.
        if item.is_math {
            let correct = bern("math", self.math_accuracy(cond));
            let chosen =
                if correct { item.correct } else { wrong_option(item, pick("math-wrong", n - 1)) };
            return AnswerOutcome {
                chosen: Some(chosen),
                text: format!("Answer: {}", OPTION_LETTERS[chosen]),
                knew: false,
                used_context: false,
            };
        }

        // 1. Answer-format failure: output no parseable letter.
        if !bern("format", self.format_reliability(item.bench)) {
            return AnswerOutcome {
                chosen: None,
                text: malformed_text(pick("malform", 3), item),
                knew: false,
                used_context: false,
            };
        }

        let knew = bern("know", self.p_know(item));

        // 2. Context extraction path.
        let relevant = context.map(|c| c.relevant_in_window).unwrap_or(false);
        let has_context = context.map(|c| c.passages_in_window > 0).unwrap_or(false);
        let (correct, used_context) = if relevant {
            let e = self.extraction(item.bench, cond);
            if bern("extract", e) {
                (true, true)
            } else if knew && !bern("distract", self.card.distraction) {
                // Extraction failed: the (long) context still competes with
                // the model's own knowledge — this is how chunk RAG can
                // *hurt* distractible models even on retrieval hits
                // (paper: OLMo 0.446 → 0.269 on the exam).
                (true, false)
            } else {
                (guess_correct(&ks, &key("guess"), self.card.guess_prob(n)), false)
            }
        } else if has_context {
            // Irrelevant context: distraction can override knowledge.
            if knew && !bern("distract", self.card.distraction) {
                (true, false)
            } else {
                (guess_correct(&ks, &key("guess"), self.card.guess_prob(n)), false)
            }
        } else if knew {
            (true, false)
        } else {
            (guess_correct(&ks, &key("guess"), self.card.guess_prob(n)), false)
        };

        let chosen = if correct { item.correct } else { wrong_option(item, pick("wrong", n - 1)) };
        AnswerOutcome {
            chosen: Some(chosen),
            text: format!("Answer: {}", OPTION_LETTERS[chosen]),
            knew,
            used_context,
        }
    }
}

fn guess_correct(ks: &KeyedStochastic, key: &[String; 4], p: f64) -> bool {
    let parts: Vec<&str> = key.iter().map(String::as_str).collect();
    ks.bernoulli(p, &parts)
}

/// The `i`-th wrong option (0-based over the distractors).
fn wrong_option(item: &McqItem, i: usize) -> usize {
    let mut idx = i % (item.options.len() - 1);
    if idx >= item.correct {
        idx += 1;
    }
    idx
}

/// Unparseable completions (what a struggling 1B model actually emits).
fn malformed_text(variant: usize, item: &McqItem) -> String {
    match variant {
        0 => String::new(),
        1 => format!(
            "This question concerns {}... all of the options seem plausible in some contexts.",
            item.stem.split_whitespace().take(4).collect::<Vec<_>>().join(" ")
        ),
        _ => "I am not able to determine the correct choice from the given information. \
              Multiple answers could apply depending on assumptions."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cards::MODEL_CARDS;
    use crate::solver::{resolve, PipelineRates};
    use mcqa_ontology::FactId;

    fn model(i: usize) -> ResolvedModel {
        let card = MODEL_CARDS[i].clone();
        let cal = resolve(&card, &PipelineRates::nominal());
        ResolvedModel { card, cal }
    }

    fn item(qid: u64, bench: BenchKind, difficulty: f64) -> McqItem {
        let n = bench.n_options();
        McqItem {
            qid,
            bench,
            fact: FactId(qid),
            stem: format!("Question number {qid} about radiobiology?"),
            options: (0..n).map(|i| format!("candidate {i}")).collect(),
            correct: (qid as usize) % n,
            difficulty,
            is_math: false,
        }
    }

    fn ctx(relevant: bool, passages: usize) -> AssembledContext {
        AssembledContext {
            passages_in_window: passages,
            passages_total: passages,
            relevant_in_window: relevant,
            relevant_retrieved: relevant,
            prompt_tokens: 500,
        }
    }

    /// Monte-Carlo accuracy over many items.
    fn mc_accuracy(
        m: &ResolvedModel,
        bench: BenchKind,
        cond: Condition,
        context: impl Fn(u64) -> Option<AssembledContext>,
        n: u64,
    ) -> f64 {
        let mut correct = 0u64;
        for qid in 0..n {
            let it = item(qid, bench, (qid % 100) as f64 / 100.0);
            let out = m.answer(&it, cond, context(qid).as_ref(), 42);
            if out.chosen == Some(it.correct) {
                correct += 1;
            }
        }
        correct as f64 / n as f64
    }

    #[test]
    fn deterministic() {
        let m = model(0);
        let it = item(7, BenchKind::Synthetic, 0.5);
        let a = m.answer(&it, Condition::Baseline, None, 42);
        let b = m.answer(&it, Condition::Baseline, None, 42);
        assert_eq!(a, b);
        let c = m.answer(&it, Condition::Baseline, None, 43);
        // Different seeds can change outcomes (not guaranteed per item, but
        // the structure must stay valid).
        assert!(c.chosen.is_none() || c.chosen.unwrap() < it.options.len());
    }

    #[test]
    fn baseline_matches_target_within_mc_noise() {
        for i in 0..MODEL_CARDS.len() {
            let m = model(i);
            let acc = mc_accuracy(&m, BenchKind::Synthetic, Condition::Baseline, |_| None, 20_000);
            let target = m.card.targets.synth_baseline;
            assert!(
                (acc - target).abs() < 0.015,
                "{}: baseline {acc:.3} vs target {target:.3}",
                m.card.name
            );
        }
    }

    #[test]
    fn full_hit_chunks_match_target_at_nominal_rate() {
        // Supply relevant context at exactly the nominal rate the solver
        // calibrated against: accuracy must land on the table value.
        let rates = PipelineRates::nominal();
        for i in [1usize, 3, 6] {
            // TinyLlama, SmolLM3, Llama-3.1 span the size range.
            let m = model(i);
            let hit = rates.synth_chunk;
            let ks = KeyedStochastic::new(7);
            let acc = mc_accuracy(
                &m,
                BenchKind::Synthetic,
                Condition::RagChunks,
                |qid| Some(ctx(ks.bernoulli(hit, &["hit", &qid.to_string()]), 5)),
                20_000,
            );
            let target = m.card.targets.synth_chunks;
            assert!(
                (acc - target).abs() < 0.02,
                "{}: chunks {acc:.3} vs target {target:.3}",
                m.card.name
            );
        }
    }

    #[test]
    fn traces_beat_chunks_under_calibrated_rates() {
        let rates = PipelineRates::nominal();
        for i in 0..MODEL_CARDS.len() {
            let m = model(i);
            let ks = KeyedStochastic::new(9);
            let chunk_acc = mc_accuracy(
                &m,
                BenchKind::Synthetic,
                Condition::RagChunks,
                |qid| Some(ctx(ks.bernoulli(rates.synth_chunk, &["hc", &qid.to_string()]), 5)),
                12_000,
            );
            let trace_acc = mc_accuracy(
                &m,
                BenchKind::Synthetic,
                Condition::RagTraces(TraceMode::Focused),
                |qid| Some(ctx(ks.bernoulli(rates.synth_trace[1], &["ht", &qid.to_string()]), 5)),
                12_000,
            );
            assert!(
                trace_acc > chunk_acc - 0.02,
                "{}: trace {trace_acc:.3} vs chunk {chunk_acc:.3}",
                m.card.name
            );
        }
    }

    #[test]
    fn irrelevant_context_hurts_distractible_models() {
        let olmo = model(0); // distraction 0.85
        let baseline =
            mc_accuracy(&olmo, BenchKind::AstroExam, Condition::Baseline, |_| None, 15_000);
        let distracted = mc_accuracy(
            &olmo,
            BenchKind::AstroExam,
            Condition::RagChunks,
            |_| Some(ctx(false, 5)),
            15_000,
        );
        assert!(
            distracted < baseline - 0.05,
            "OLMo should collapse under irrelevant context: {distracted:.3} vs {baseline:.3}"
        );
    }

    #[test]
    fn math_channel_reproduces_llama3_rt_collapse() {
        let llama3 = MODEL_CARDS.iter().position(|c| c.name == "Llama-3-8B-Instruct").unwrap();
        let m = model(llama3);
        let mut math_item = item(3, BenchKind::AstroExam, 0.5);
        math_item.is_math = true;
        let mut base = 0;
        let mut rt = 0;
        let n = 10_000;
        for qid in 0..n {
            let mut it = item(qid, BenchKind::AstroExam, 0.5);
            it.is_math = true;
            if m.answer(&it, Condition::Baseline, None, 1).chosen == Some(it.correct) {
                base += 1;
            }
            if m.answer(&it, Condition::RagTraces(TraceMode::Focused), Some(&ctx(true, 5)), 1)
                .chosen
                == Some(it.correct)
            {
                rt += 1;
            }
        }
        let base_acc = base as f64 / n as f64;
        let rt_acc = rt as f64 / n as f64;
        assert!(rt_acc < base_acc - 0.2, "math RT collapse: {rt_acc:.3} vs {base_acc:.3}");
    }

    #[test]
    fn malformed_answers_ungradeable() {
        let tiny = model(1); // format_exam 0.45
        let mut malformed = 0;
        let n = 4_000;
        for qid in 0..n {
            let it = item(qid, BenchKind::AstroExam, 0.5);
            if tiny.answer(&it, Condition::Baseline, None, 11).chosen.is_none() {
                malformed += 1;
            }
        }
        let frac = malformed as f64 / n as f64;
        assert!((frac - 0.55).abs() < 0.05, "malformed fraction {frac}");
    }

    #[test]
    fn wrong_option_never_correct() {
        let it = item(5, BenchKind::Synthetic, 0.2);
        for i in 0..12 {
            assert_ne!(wrong_option(&it, i), it.correct);
        }
    }

    #[test]
    fn condition_labels_unique() {
        let labels: std::collections::HashSet<String> =
            Condition::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 5);
    }
}
