//! The LLM judge: question-quality scoring and answer grading.
//!
//! Figure 1: "An arbitrary LLM judge performs the grading and provides a
//! reasoning." Two duties:
//!
//! * **Quality scoring** (paper §2): each candidate MCQ gets a 1–10 score
//!   for clarity, accuracy, distractor plausibility and educational
//!   value; items below 7 are discarded. The paper keeps 16,680 of
//!   173,318 candidates (≈ 9.6%) — the score model below is calibrated to
//!   that acceptance rate.
//! * **Answer grading**: parse a model's free-text completion, extract its
//!   chosen letter, compare to the key, and emit a reasoning string.

use mcqa_util::KeyedStochastic;
use serde::{Deserialize, Serialize};

use crate::mcq::OPTION_LETTERS;
use crate::teacher::{GeneratedQuestion, QuestionDefect};

/// The paper's acceptance threshold.
pub const QUALITY_THRESHOLD: u8 = 7;

/// A quality verdict for a candidate question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityJudgment {
    /// Score 1–10.
    pub score: u8,
    /// The judge's stated reasoning.
    pub reasoning: String,
}

impl QualityJudgment {
    /// True when the item clears the paper's 7/10 bar.
    pub fn accepted(&self) -> bool {
        self.score >= QUALITY_THRESHOLD
    }
}

/// The grading verdict for one model answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradeResult {
    /// Parsed letter, if any.
    pub parsed: Option<char>,
    /// Whether the answer was graded correct.
    pub correct: bool,
    /// The judge's reasoning line.
    pub reasoning: String,
}

/// The simulated judge.
#[derive(Debug, Clone)]
pub struct JudgeModel {
    seed: u64,
}

impl JudgeModel {
    /// Create a judge.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Score a candidate question 1–10.
    ///
    /// Score model: a salience/plausibility-driven base with keyed noise,
    /// minus defect penalties. Constants are calibrated so that roughly
    /// 10% of candidates clear 7/10, matching the paper's 16,680/173,318.
    pub fn score_question(&self, q: &GeneratedQuestion, salience: f64) -> QualityJudgment {
        let rng = KeyedStochastic::new(self.seed ^ 0x10D6_E5EE);
        let key = format!("{}:{}", q.fact.0, mcqa_util::fnv1a(q.stem.as_bytes()));

        let mut score = 2.0
            + 2.0 * salience
            + 2.4 * q.distractor_plausibility
            + 1.6 * rng.gaussian(&["noise", &key]);
        let mut notes: Vec<&str> = Vec::new();
        for d in &q.defects {
            match d {
                QuestionDefect::ContextReference => {
                    score -= 3.0;
                    notes.push("stem references the source passage (not self-contained)");
                }
                QuestionDefect::AmbiguousStem => {
                    score -= 2.5;
                    notes.push("stem is ambiguous without its subject");
                }
                QuestionDefect::WrongKey => {
                    // Judges catch most wrong keys via internal consistency.
                    if rng.bernoulli(0.8, &["catch-wrongkey", &key]) {
                        score -= 4.0;
                        notes.push("recorded key appears inconsistent with the stem");
                    }
                }
            }
        }
        let score = score.round().clamp(1.0, 10.0) as u8;
        let reasoning = if notes.is_empty() {
            format!(
                "Clear stem, plausible distractors (plausibility {:.2}), appropriate difficulty. \
                 Score {score}/10.",
                q.distractor_plausibility
            )
        } else {
            format!("Issues: {}. Score {score}/10.", notes.join("; "))
        };
        QualityJudgment { score, reasoning }
    }

    /// Grade a model completion against the correct option index.
    pub fn grade(&self, completion: &str, correct: usize, n_options: usize) -> GradeResult {
        let parsed = parse_choice(completion, n_options);
        match parsed {
            Some(letter) => {
                let idx = OPTION_LETTERS.iter().position(|l| *l == letter).expect("valid letter");
                let correct_letter = OPTION_LETTERS[correct];
                let ok = idx == correct;
                GradeResult {
                    parsed,
                    correct: ok,
                    reasoning: if ok {
                        format!("Parsed choice {letter}; matches key {correct_letter}. Correct.")
                    } else {
                        format!("Parsed choice {letter}; key is {correct_letter}. Incorrect.")
                    },
                }
            }
            None => GradeResult {
                parsed: None,
                correct: false,
                reasoning: "No parseable option letter in the completion. Graded incorrect.".into(),
            },
        }
    }
}

/// Extract a chosen option letter from free text.
///
/// Recognised forms, in priority order:
/// 1. `"Answer: X"` / `"answer is X"`;
/// 2. a standalone valid letter token (`"C"`, `"(c)"`, `"C."`).
fn parse_choice(text: &str, n_options: usize) -> Option<char> {
    let valid = &OPTION_LETTERS[..n_options.min(OPTION_LETTERS.len())];
    let upper = text.to_uppercase();

    for marker in ["ANSWER:", "ANSWER IS", "CHOICE:", "CHOOSE"] {
        if let Some(pos) = upper.find(marker) {
            let tail = &upper[pos + marker.len()..];
            for c in tail.chars() {
                if valid.contains(&c) {
                    return Some(c);
                }
                if c.is_alphanumeric() {
                    break; // first word after the marker was not a letter
                }
            }
        }
    }

    // Standalone letter token.
    for token in upper.split(|c: char| !c.is_alphanumeric()) {
        if token.len() == 1 {
            let c = token.chars().next().expect("len 1");
            if valid.contains(&c) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::teacher::{TeacherConfig, TeacherModel};
    use mcqa_ontology::{Ontology, OntologyConfig};

    fn setup() -> (Ontology, TeacherModel, JudgeModel) {
        let ont = Ontology::generate(&OntologyConfig {
            seed: 42,
            entities_per_kind: 120,
            qualitative_facts: 1500,
            quantitative_facts: 10,
        });
        (ont, TeacherModel::new(TeacherConfig::default()), JudgeModel::new(42))
    }

    #[test]
    fn acceptance_rate_near_paper() {
        // Paper: 16,680 / 173,318 ≈ 9.6% pass the 7/10 filter.
        let (ont, teacher, judge) = setup();
        let mut accepted = 0usize;
        let n = ont.facts().len();
        for fact in ont.facts() {
            let q = teacher.generate_question(&ont, fact, "c0");
            if judge.score_question(&q, fact.salience).accepted() {
                accepted += 1;
            }
        }
        let rate = accepted as f64 / n as f64;
        assert!(
            (0.05..=0.18).contains(&rate),
            "acceptance rate {rate:.3} far from the paper's 9.6%"
        );
    }

    #[test]
    fn defective_questions_score_lower() {
        let (ont, teacher, judge) = setup();
        let mut clean_scores = Vec::new();
        let mut dirty_scores = Vec::new();
        for fact in ont.facts().iter().take(800) {
            let q = teacher.generate_question(&ont, fact, "c0");
            let s = judge.score_question(&q, fact.salience).score as f64;
            if q.defects.is_empty() {
                clean_scores.push(s);
            } else {
                dirty_scores.push(s);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&clean_scores) > mean(&dirty_scores) + 1.0,
            "clean {:.2} vs dirty {:.2}",
            mean(&clean_scores),
            mean(&dirty_scores)
        );
    }

    #[test]
    fn judgments_deterministic_and_bounded() {
        let (ont, teacher, judge) = setup();
        let q = teacher.generate_question(&ont, &ont.facts()[0], "c0");
        let a = judge.score_question(&q, 0.5);
        let b = judge.score_question(&q, 0.5);
        assert_eq!(a, b);
        assert!((1..=10).contains(&a.score));
        assert!(!a.reasoning.is_empty());
    }

    #[test]
    fn grading_wellformed_answers() {
        let judge = JudgeModel::new(1);
        let g = judge.grade("Answer: C", 2, 7);
        assert!(g.correct);
        assert_eq!(g.parsed, Some('C'));
        let g = judge.grade("Answer: D", 2, 7);
        assert!(!g.correct);
        assert!(g.reasoning.contains("key is C"));
    }

    #[test]
    fn grading_parses_varied_formats() {
        let judge = JudgeModel::new(1);
        assert_eq!(judge.grade("I believe the answer is b, due to...", 1, 5).parsed, Some('B'));
        assert_eq!(judge.grade("(e)", 4, 5).parsed, Some('E'));
        assert_eq!(judge.grade("The best choice: A.", 0, 5).parsed, Some('A'));
        assert!(judge.grade("The best choice: A.", 0, 5).correct);
    }

    #[test]
    fn grading_rejects_unparseable() {
        let judge = JudgeModel::new(1);
        for text in ["", "All options could apply.", "I cannot determine this."] {
            let g = judge.grade(text, 0, 7);
            assert!(!g.correct);
            assert_eq!(g.parsed, None);
            assert!(g.reasoning.contains("No parseable"));
        }
    }

    #[test]
    fn grading_respects_option_count() {
        let judge = JudgeModel::new(1);
        // "G" is valid for 7 options but not for 5.
        assert_eq!(judge.grade("Answer: G", 0, 7).parsed, Some('G'));
        assert_eq!(judge.grade("Answer: G", 0, 5).parsed, None);
    }

    #[test]
    fn wrong_key_catch_reduces_leakage() {
        // Questions with a wrong recorded key must rarely survive the
        // filter (they would corrupt the benchmark).
        let (ont, teacher, judge) = setup();
        let mut wrongkey_accepted = 0usize;
        let mut wrongkey_total = 0usize;
        for fact in ont.facts() {
            let q = teacher.generate_question(&ont, fact, "c0");
            if q.defects.contains(&crate::teacher::QuestionDefect::WrongKey) {
                wrongkey_total += 1;
                if judge.score_question(&q, fact.salience).accepted() {
                    wrongkey_accepted += 1;
                }
            }
        }
        assert!(wrongkey_total > 0);
        assert!(
            (wrongkey_accepted as f64) < 0.15 * wrongkey_total as f64,
            "{wrongkey_accepted}/{wrongkey_total} wrong-key questions accepted"
        );
    }
}
