//! The provider-style model API: one [`ModelEndpoint`] trait for every
//! model role in the paper.
//!
//! The paper's pipeline is, end to end, a choreography of LLM calls —
//! GPT-4.1 generating questions and distilling traces, an LLM judge
//! filtering and grading, GPT-5 classifying math items, and eight SLMs
//! answering under five retrieval conditions. Here every one of those
//! calls travels through the same typed envelope:
//!
//! * [`ModelRequest`] — role, prompt parts, decode params, seed, and a
//!   structured [`RequestPayload`] (what a remote backend would serialise
//!   into the prompt, and what the simulator interprets directly);
//! * [`ModelResponse`] — the raw text payload, a structured
//!   [`RoleOutput`], and token-count estimates for cost accounting.
//!
//! Backends implement [`ModelEndpoint::complete`]; the batched entry point
//! [`ModelEndpoint::complete_batch`] fans out on the runtime pool and is
//! bit-identical to sequential completion (property-tested). Consumers
//! never see a backend type: they hold `Arc<dyn ModelEndpoint>` and go
//! through the thin role adapters in [`crate::adapters`].

use mcqa_ontology::FactId;
use mcqa_runtime::{run_stage_batched, Executor};
use serde::Serialize;

use crate::answer::{AnswerOutcome, Condition, ResolvedModel};
use crate::context::AssembledContext;
use crate::judge::{GradeResult, QualityJudgment};
use crate::mcq::McqItem;
use crate::teacher::GeneratedQuestion;
use crate::trace::TraceMode;

/// The model roles the paper's workflow employs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Role {
    /// GPT-4.1: question generation and reasoning-trace distillation.
    Teacher,
    /// The LLM judge: quality scoring and answer grading.
    Judge,
    /// GPT-5: math-question classification.
    Classifier,
    /// An evaluated SLM answering one MCQ.
    Answerer,
    /// The cross-encoder rescoring fused retrieval candidates.
    Reranker,
}

impl Role {
    /// All roles in canonical order.
    pub const ALL: [Role; 5] =
        [Role::Teacher, Role::Judge, Role::Classifier, Role::Answerer, Role::Reranker];

    /// Lowercase label used in ledger lines and metrics rows.
    pub fn label(self) -> &'static str {
        match self {
            Role::Teacher => "teacher",
            Role::Judge => "judge",
            Role::Classifier => "classifier",
            Role::Answerer => "answerer",
            Role::Reranker => "reranker",
        }
    }

    /// Position in [`Role::ALL`].
    pub fn index(self) -> usize {
        match self {
            Role::Teacher => 0,
            Role::Judge => 1,
            Role::Classifier => 2,
            Role::Answerer => 3,
            Role::Reranker => 4,
        }
    }
}

/// What a prompt part is for (system scaffold, retrieved context, or the
/// user turn).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PartKind {
    /// Instructions / scaffold.
    System,
    /// Retrieved or source material.
    Context,
    /// The task itself.
    User,
}

/// One part of the prompt a backend would assemble.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PromptPart {
    /// What the part is.
    pub kind: PartKind,
    /// The part's text.
    pub text: String,
}

impl PromptPart {
    /// A system part.
    pub fn system(text: impl Into<String>) -> Self {
        Self { kind: PartKind::System, text: text.into() }
    }

    /// A context part.
    pub fn context(text: impl Into<String>) -> Self {
        Self { kind: PartKind::Context, text: text.into() }
    }

    /// A user part.
    pub fn user(text: impl Into<String>) -> Self {
        Self { kind: PartKind::User, text: text.into() }
    }
}

/// Decoding parameters (part of the request identity: a different
/// temperature is a different completion).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DecodeParams {
    /// Sampling temperature (the whole reproduction decodes greedily).
    pub temperature: f64,
    /// Completion-length cap.
    pub max_tokens: usize,
}

impl Default for DecodeParams {
    fn default() -> Self {
        Self { temperature: 0.0, max_tokens: 1024 }
    }
}

/// The structured operation behind a request. A remote backend would
/// render this into prompt text; the simulator interprets it directly —
/// either way the payload *is* the request's semantic identity, which is
/// what makes content-addressed caching sound.
// The Answer variant dominates the size (card + calibration travel in the
// request); boxing it would complicate the serde-shim derive for no win on
// this hot path, where requests are built once and moved.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum RequestPayload {
    /// Teacher: generate one 7-option MCQ grounded in `fact`.
    GenerateQuestion {
        /// The anchor fact (resolved against the backend's ontology).
        fact: FactId,
        /// Distinguishes multiple questions over the same fact.
        salt: String,
    },
    /// Teacher: distil one reasoning trace for `question` in `mode`.
    DistillTrace {
        /// The accepted question.
        question: GeneratedQuestion,
        /// The trace mode.
        mode: TraceMode,
    },
    /// Judge: score a candidate question 1–10.
    ScoreQuestion {
        /// The candidate.
        question: GeneratedQuestion,
        /// Salience of the tested fact (drives the score model).
        salience: f64,
    },
    /// Judge: grade a model completion against the answer key.
    GradeAnswer {
        /// The model's free-text completion.
        completion: String,
        /// Correct option index.
        correct: usize,
        /// Number of options.
        n_options: usize,
    },
    /// Classifier: does the item require mathematical reasoning?
    ClassifyMath {
        /// The exam item.
        item: McqItem,
    },
    /// Reranker: score each passage's relevance to `query` in [0, 1].
    Rerank {
        /// The retrieval query (usually a question stem).
        query: String,
        /// The candidate passages, in fused rank order.
        passages: Vec<String>,
    },
    /// Answerer: one calibrated SLM answers one MCQ.
    Answer {
        /// The behaviour card joined with its calibration.
        model: ResolvedModel,
        /// The question.
        item: McqItem,
        /// The retrieval condition.
        condition: Condition,
        /// The truncated context, if any.
        context: Option<AssembledContext>,
    },
}

impl RequestPayload {
    /// The role this payload addresses.
    pub fn role(&self) -> Role {
        match self {
            RequestPayload::GenerateQuestion { .. } | RequestPayload::DistillTrace { .. } => {
                Role::Teacher
            }
            RequestPayload::ScoreQuestion { .. } | RequestPayload::GradeAnswer { .. } => {
                Role::Judge
            }
            RequestPayload::ClassifyMath { .. } => Role::Classifier,
            RequestPayload::Rerank { .. } => Role::Reranker,
            RequestPayload::Answer { .. } => Role::Answerer,
        }
    }

    /// Whether the response cache should retain completions for this
    /// payload. Teacher generation/distillation and judge quality scoring
    /// are issued exactly once per (fact, salt) / (question, mode) /
    /// candidate within a run — every such entry would be written and
    /// never read, pinning ~40% of resident cache memory at paper scale.
    /// Grading, math classification, reranking, and answering *do*
    /// repeat (the no-math re-answer pass, repeated `run_cards`,
    /// per-mode retrieval replays, ablations), so they stay cached.
    pub fn cacheable(&self) -> bool {
        !matches!(
            self,
            RequestPayload::GenerateQuestion { .. }
                | RequestPayload::DistillTrace { .. }
                | RequestPayload::ScoreQuestion { .. }
        )
    }
}

/// One completion request.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModelRequest {
    /// Which model role the request addresses.
    pub role: Role,
    /// Prompt parts a text backend would assemble, in order.
    pub parts: Vec<PromptPart>,
    /// The structured operation.
    pub payload: RequestPayload,
    /// Per-request seed (the answer cascade is keyed on it; generation
    /// backends are seeded at construction and may ignore it).
    pub seed: u64,
    /// Decode parameters.
    pub params: DecodeParams,
}

impl ModelRequest {
    /// Build a request, deriving `role` from the payload.
    pub fn new(parts: Vec<PromptPart>, payload: RequestPayload, seed: u64) -> Self {
        Self { role: payload.role(), parts, payload, seed, params: DecodeParams::default() }
    }

    /// The canonical encoding of the request — every field that affects
    /// the completion, serialised deterministically. Content-addressed
    /// caching hashes this.
    pub fn canonical_encoding(&self) -> String {
        serde_json::to_string(self).expect("model requests serialise")
    }

    /// Content address: fnv1a over [`ModelRequest::canonical_encoding`]
    /// (same shape as the embedding cache's key; a 64-bit collision would
    /// alias two requests — probability ~2⁻⁶⁴ per pair, negligible at any
    /// realistic call volume).
    ///
    /// The encoding is streamed straight into the hasher
    /// ([`serde_json::to_writer`] over [`mcqa_util::Fnv1aWriter`]), so the
    /// eval loop's ~270k cache-key computations per run never materialise
    /// the transient JSON string — the key is bit-identical to hashing
    /// [`ModelRequest::canonical_encoding`].
    pub fn cache_key(&self) -> u64 {
        let mut hasher = mcqa_util::Fnv1aWriter::new();
        serde_json::to_writer(&mut hasher, self).expect("model requests serialise");
        hasher.finish()
    }

    /// Prompt-token estimate. For an answer request with an assembled
    /// context, the context's real post-truncation accounting *is* the
    /// prompt size (it already covers the rendered question, the prompt
    /// scaffold, and the surviving passages — adding the parts again would
    /// double-count the question). Everything else is the parts' token
    /// counts.
    pub fn prompt_tokens(&self) -> usize {
        if let RequestPayload::Answer { context: Some(c), .. } = &self.payload {
            return c.prompt_tokens;
        }
        self.parts.iter().map(|p| mcqa_text::token_count(&p.text)).sum()
    }
}

/// The structured result of one completion, by role.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum RoleOutput {
    /// A generated question.
    Question(GeneratedQuestion),
    /// A distilled reasoning trace.
    Trace(String),
    /// A quality verdict.
    Quality(QualityJudgment),
    /// A grading verdict.
    Grade(GradeResult),
    /// The math-classification flag.
    MathFlag(bool),
    /// Per-passage relevance scores in [0, 1], index-aligned with the
    /// rerank request's passages.
    Relevance(Vec<f64>),
    /// An answer attempt.
    Answer(AnswerOutcome),
}

impl RoleOutput {
    /// Unwrap a question. Panics on role mismatch (a wiring bug).
    pub fn expect_question(self) -> GeneratedQuestion {
        match self {
            RoleOutput::Question(q) => q,
            other => panic!("expected a Question output, got {other:?}"),
        }
    }

    /// Unwrap a trace. Panics on role mismatch.
    pub fn expect_trace(self) -> String {
        match self {
            RoleOutput::Trace(t) => t,
            other => panic!("expected a Trace output, got {other:?}"),
        }
    }

    /// Unwrap a quality verdict. Panics on role mismatch.
    pub fn expect_quality(self) -> QualityJudgment {
        match self {
            RoleOutput::Quality(q) => q,
            other => panic!("expected a Quality output, got {other:?}"),
        }
    }

    /// Unwrap a grading verdict. Panics on role mismatch.
    pub fn expect_grade(self) -> GradeResult {
        match self {
            RoleOutput::Grade(g) => g,
            other => panic!("expected a Grade output, got {other:?}"),
        }
    }

    /// Unwrap the math flag. Panics on role mismatch.
    pub fn expect_math_flag(self) -> bool {
        match self {
            RoleOutput::MathFlag(b) => b,
            other => panic!("expected a MathFlag output, got {other:?}"),
        }
    }

    /// Unwrap relevance scores. Panics on role mismatch.
    pub fn expect_relevance(self) -> Vec<f64> {
        match self {
            RoleOutput::Relevance(r) => r,
            other => panic!("expected a Relevance output, got {other:?}"),
        }
    }

    /// Unwrap an answer. Panics on role mismatch.
    pub fn expect_answer(self) -> AnswerOutcome {
        match self {
            RoleOutput::Answer(a) => a,
            other => panic!("expected an Answer output, got {other:?}"),
        }
    }
}

/// One completion.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModelResponse {
    /// The raw text payload (what a grading judge or a log would see).
    pub text: String,
    /// The structured output.
    pub output: RoleOutput,
    /// Prompt-token estimate for the request that produced this.
    pub tokens_in: usize,
    /// Completion-token estimate.
    pub tokens_out: usize,
}

impl ModelResponse {
    /// Build a response from text + structured output, estimating token
    /// counts from `req` and the text.
    pub fn from_output(req: &ModelRequest, text: String, output: RoleOutput) -> Self {
        let tokens_out = mcqa_text::token_count(&text);
        Self { text, output, tokens_in: req.prompt_tokens(), tokens_out }
    }
}

/// A model backend serving every role behind one completion API.
///
/// Implementations must be deterministic functions of the request (plus
/// construction-time seeds): that is what makes the content-addressed
/// [`crate::ResponseCache`] and the batched/serial equivalence guarantee
/// sound.
pub trait ModelEndpoint: Send + Sync {
    /// Backend label (`sim`, some day `http`).
    fn backend(&self) -> &'static str;

    /// Serve one request.
    fn complete(&self, req: &ModelRequest) -> ModelResponse;

    /// Serve a batch, fanned out on `exec`'s pool. Results are
    /// index-aligned with `reqs` and bit-identical to calling
    /// [`ModelEndpoint::complete`] sequentially.
    fn complete_batch(&self, exec: &Executor, reqs: &[ModelRequest]) -> Vec<ModelResponse> {
        fan_out_batch(exec, reqs, |r| self.complete(r))
    }
}

/// The one fan-out behind every `complete_batch`: auto-sized chunked
/// submission on the pool, bit-identical to a sequential map of `serve`.
/// Shared by the trait default and the hub's cached path so the
/// batched/serial equivalence guarantee cannot diverge between them.
pub(crate) fn fan_out_batch(
    exec: &Executor,
    reqs: &[ModelRequest],
    serve: impl Fn(&ModelRequest) -> ModelResponse + Sync,
) -> Vec<ModelResponse> {
    let (results, _metrics) =
        run_stage_batched(exec, "model-batch", (0..reqs.len()).collect(), 0, |i| {
            Ok::<_, String>(serve(&reqs[i]))
        });
    results.into_iter().map(|r| r.expect("model completion cannot fail")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(seed: u64) -> ModelRequest {
        ModelRequest::new(
            vec![PromptPart::system("grade"), PromptPart::user("Answer: C")],
            RequestPayload::GradeAnswer {
                completion: "Answer: C".into(),
                correct: 2,
                n_options: 7,
            },
            seed,
        )
    }

    #[test]
    fn role_derived_from_payload() {
        assert_eq!(req(1).role, Role::Judge);
        for r in Role::ALL {
            assert_eq!(Role::ALL[r.index()], r);
        }
        let labels: std::collections::HashSet<&str> = Role::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), 5);
        let rerank = RequestPayload::Rerank { query: "q".into(), passages: vec!["p".into()] };
        assert_eq!(rerank.role(), Role::Reranker);
        assert!(rerank.cacheable(), "rerank repeats across retrieval replays");
    }

    #[test]
    fn cache_key_is_content_addressed() {
        assert_eq!(req(1).cache_key(), req(1).cache_key());
        assert_ne!(req(1).cache_key(), req(2).cache_key(), "seed is part of the identity");
        let mut hotter = req(1);
        hotter.params.temperature = 0.7;
        assert_ne!(req(1).cache_key(), hotter.cache_key(), "params are part of the identity");
    }

    #[test]
    fn cache_key_streams_the_canonical_encoding() {
        // The streamed key must equal hashing the materialised canonical
        // encoding — the content address is unchanged by the zero-alloc
        // path (the ledger census depends on that).
        for seed in [1u64, 42, 999] {
            let r = req(seed);
            assert_eq!(r.cache_key(), mcqa_util::fnv1a(r.canonical_encoding().as_bytes()));
        }
    }

    #[test]
    fn cache_policy_follows_payload_repetition() {
        use crate::teacher::GeneratedQuestion;
        let q = GeneratedQuestion {
            fact: FactId(7),
            stem: "Which kinase?".into(),
            options: vec!["TRK2".into()],
            recorded_key: 0,
            true_key: 0,
            defects: Vec::new(),
            distractor_plausibility: 0.5,
        };
        let once_only = [
            RequestPayload::GenerateQuestion { fact: FactId(7), salt: "s".into() },
            RequestPayload::DistillTrace { question: q.clone(), mode: TraceMode::Focused },
            RequestPayload::ScoreQuestion { question: q, salience: 0.5 },
        ];
        for p in once_only {
            assert!(!p.cacheable(), "{:?} never repeats within a run", p.role());
        }
        assert!(req(1).payload.cacheable(), "grading repeats and stays cached");
    }

    #[test]
    fn prompt_tokens_count_parts_and_context() {
        let r = req(1);
        assert_eq!(r.prompt_tokens(), 1 + 2);
        let with_ctx = ModelRequest::new(
            vec![PromptPart::system("answer the question")],
            RequestPayload::Answer {
                model: crate::solver::test_resolved_model(),
                item: crate::mcq::test_item(),
                condition: Condition::Baseline,
                context: Some(AssembledContext {
                    passages_in_window: 2,
                    passages_total: 5,
                    relevant_in_window: true,
                    relevant_retrieved: true,
                    prompt_tokens: 500,
                }),
            },
            42,
        );
        // The assembled context's accounting subsumes the question and
        // scaffold — parts are not added on top (no double counting).
        assert_eq!(with_ctx.prompt_tokens(), 500);
    }

    #[test]
    #[should_panic(expected = "expected a Trace")]
    fn role_output_mismatch_is_loud() {
        RoleOutput::MathFlag(true).expect_trace();
    }
}
