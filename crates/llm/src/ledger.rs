//! The per-role call ledger: the cost-accounting surface of the model
//! layer.
//!
//! Every request through a [`crate::ModelHub`] is tallied here — per role:
//! calls, batch submissions, cache hits, token in/out estimates for the
//! completions that actually hit the backend, and cumulative backend busy
//! time. The ledger renders two ways: as [`StageMetrics`] rows folded into
//! the Figure-1 stage report, and as greppable `[models] key=value` lines
//! behind the `repro models` subcommand.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use mcqa_runtime::StageMetrics;
use serde::Serialize;

use crate::endpoint::Role;

/// A snapshot of one role's tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct RoleStats {
    /// Requests served (cache hits included).
    pub calls: u64,
    /// Batch submissions that contained at least one request for this role.
    pub batches: u64,
    /// Requests that arrived via a batch submission.
    pub batched_calls: u64,
    /// Requests short-circuited by the response cache.
    pub cache_hits: u64,
    /// Prompt tokens sent to the backend (cache hits excluded — a hit
    /// costs nothing).
    pub tokens_in: u64,
    /// Completion tokens received from the backend (cache hits excluded).
    pub tokens_out: u64,
    /// Cumulative backend busy time in seconds (summed across workers, so
    /// it can exceed wall-clock on a parallel stage).
    pub busy_secs: f64,
}

impl RoleStats {
    /// Requests that reached the backend.
    pub fn backend_calls(&self) -> u64 {
        self.calls - self.cache_hits
    }

    /// Cache hit rate in `[0, 1]` (0 for an idle role).
    pub fn hit_rate(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.calls as f64
        }
    }

    /// Mean requests per batch submission (0 when nothing was batched).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_calls as f64 / self.batches as f64
        }
    }

    fn merge(&mut self, other: &RoleStats) {
        self.calls += other.calls;
        self.batches += other.batches;
        self.batched_calls += other.batched_calls;
        self.cache_hits += other.cache_hits;
        self.tokens_in += other.tokens_in;
        self.tokens_out += other.tokens_out;
        self.busy_secs += other.busy_secs;
    }
}

#[derive(Default)]
struct RoleCounters {
    calls: AtomicU64,
    batches: AtomicU64,
    batched_calls: AtomicU64,
    cache_hits: AtomicU64,
    tokens_in: AtomicU64,
    tokens_out: AtomicU64,
    busy_nanos: AtomicU64,
}

impl RoleCounters {
    fn snapshot(&self) -> RoleStats {
        RoleStats {
            calls: self.calls.load(Relaxed),
            batches: self.batches.load(Relaxed),
            batched_calls: self.batched_calls.load(Relaxed),
            cache_hits: self.cache_hits.load(Relaxed),
            tokens_in: self.tokens_in.load(Relaxed),
            tokens_out: self.tokens_out.load(Relaxed),
            busy_secs: self.busy_nanos.load(Relaxed) as f64 / 1e9,
        }
    }
}

/// The ledger: one set of counters per [`Role`], safe to share across pool
/// workers.
#[derive(Default)]
pub struct CallLedger {
    roles: [RoleCounters; Role::ALL.len()],
}

impl CallLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one served request.
    pub fn record_call(
        &self,
        role: Role,
        cached: bool,
        tokens_in: usize,
        tokens_out: usize,
        busy_nanos: u64,
    ) {
        let c = &self.roles[role.index()];
        c.calls.fetch_add(1, Relaxed);
        if cached {
            c.cache_hits.fetch_add(1, Relaxed);
        } else {
            c.tokens_in.fetch_add(tokens_in as u64, Relaxed);
            c.tokens_out.fetch_add(tokens_out as u64, Relaxed);
            c.busy_nanos.fetch_add(busy_nanos, Relaxed);
        }
    }

    /// Record a batch submission containing `n` requests for `role`.
    pub fn record_batch(&self, role: Role, n: usize) {
        let c = &self.roles[role.index()];
        c.batches.fetch_add(1, Relaxed);
        c.batched_calls.fetch_add(n as u64, Relaxed);
    }

    /// Snapshot one role.
    pub fn role(&self, role: Role) -> RoleStats {
        self.roles[role.index()].snapshot()
    }

    /// Snapshot every role, in canonical order.
    pub fn snapshot(&self) -> Vec<(Role, RoleStats)> {
        Role::ALL.iter().map(|r| (*r, self.role(*r))).collect()
    }

    /// Aggregate across roles.
    pub fn total(&self) -> RoleStats {
        let mut total = RoleStats::default();
        for (_, s) in self.snapshot() {
            total.merge(&s);
        }
        total
    }

    /// One [`StageMetrics`] row per *active* role (zero-call roles are
    /// omitted), named `model-<role>`, for the Figure-1 stage report:
    /// `items` = requests, `ok` = requests, `produced` = completion-token
    /// estimate, `elapsed` = backend busy time.
    pub fn stage_rows(&self) -> Vec<StageMetrics> {
        self.snapshot()
            .into_iter()
            .filter(|(_, s)| s.calls > 0)
            .map(|(role, s)| StageMetrics {
                name: format!("model-{}", role.label()),
                items: s.calls as usize,
                ok: s.calls as usize,
                errors: 0,
                panics: 0,
                produced: s.tokens_out as usize,
                elapsed_secs: s.busy_secs,
            })
            .collect()
    }

    /// Greppable `[models] key=value` lines: one per active role plus a
    /// `role=total` aggregate (always emitted, so a census has an anchor
    /// even before any call).
    pub fn summary_lines(&self, backend: &str) -> Vec<String> {
        let line = |role: &str, s: &RoleStats| {
            format!(
                "[models] backend={backend} role={role} calls={} batches={} \
                 mean_batch={:.1} cache_hits={} hit_rate={:.4} tokens_in={} tokens_out={} \
                 busy_secs={:.3}",
                s.calls,
                s.batches,
                s.mean_batch_size(),
                s.cache_hits,
                s.hit_rate(),
                s.tokens_in,
                s.tokens_out,
                s.busy_secs,
            )
        };
        let mut out: Vec<String> = self
            .snapshot()
            .iter()
            .filter(|(_, s)| s.calls > 0)
            .map(|(r, s)| line(r.label(), s))
            .collect();
        out.push(line("total", &self.total()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_per_role() {
        let ledger = CallLedger::new();
        ledger.record_call(Role::Teacher, false, 100, 40, 1_000);
        ledger.record_call(Role::Teacher, true, 100, 40, 0);
        ledger.record_call(Role::Judge, false, 30, 10, 500);
        ledger.record_batch(Role::Teacher, 2);

        let t = ledger.role(Role::Teacher);
        assert_eq!(t.calls, 2);
        assert_eq!(t.cache_hits, 1);
        assert_eq!(t.backend_calls(), 1);
        assert_eq!(t.tokens_in, 100, "cache hits cost no tokens");
        assert_eq!(t.tokens_out, 40);
        assert_eq!(t.batches, 1);
        assert!((t.hit_rate() - 0.5).abs() < 1e-12);
        assert!((t.mean_batch_size() - 2.0).abs() < 1e-12);

        assert_eq!(ledger.role(Role::Classifier).calls, 0);
        assert_eq!(ledger.total().calls, 3);
        assert_eq!(ledger.total().tokens_in, 130);
    }

    #[test]
    fn stage_rows_cover_active_roles_only() {
        let ledger = CallLedger::new();
        ledger.record_call(Role::Answerer, false, 10, 5, 2_000_000);
        let rows = ledger.stage_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "model-answerer");
        assert_eq!(rows[0].items, 1);
        assert_eq!(rows[0].produced, 5);
        assert!((rows[0].elapsed_secs - 0.002).abs() < 1e-9);
    }

    #[test]
    fn summary_lines_are_greppable() {
        let ledger = CallLedger::new();
        ledger.record_call(Role::Judge, false, 30, 10, 0);
        let lines = ledger.summary_lines("sim");
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("[models] backend=sim role=judge calls=1 "));
        assert!(lines[1].contains("role=total"));
        assert!(lines[0].contains("tokens_in=30"));
        assert!(lines[0].contains("hit_rate=0.0000"));
    }

    #[test]
    fn concurrent_recording_conserves_counts() {
        let ledger = CallLedger::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let ledger = &ledger;
                s.spawn(move || {
                    for i in 0..250 {
                        ledger.record_call(Role::Answerer, i % 5 == 0, 10, 5, 100);
                    }
                });
            }
        });
        let a = ledger.role(Role::Answerer);
        assert_eq!(a.calls, 1000);
        assert_eq!(a.cache_hits, 200);
        assert_eq!(a.backend_calls(), 800);
        assert_eq!(a.tokens_in, 8000);
    }
}
