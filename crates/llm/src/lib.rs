//! `mcqa-llm` — the simulated language-model substrate.
//!
//! Nothing in this workspace calls a hosted LLM; every model role in the
//! paper is played by a deterministic behavioural simulator:
//!
//! | Paper role | Here |
//! |---|---|
//! | GPT-4.1 question generation | [`teacher::TeacherModel::generate_question`] |
//! | GPT-4.1 reasoning-trace distillation (3 modes) | [`teacher::TeacherModel::generate_trace`] |
//! | LLM judge (quality scoring + grading) | [`judge::JudgeModel`] |
//! | GPT-5 math-question classifier | [`math_classifier::MathClassifier`] |
//! | The eight evaluated SLMs (1.1B–14B) | [`cards::ModelCard`] + [`answer::ResolvedModel`] |
//!
//! ## The calibration contract
//!
//! Model cards carry two kinds of numbers:
//!
//! * **Structural parameters** (context window, answer-format reliability,
//!   distractor-elimination skill, distraction susceptibility) — chosen
//!   a-priori per model and documented on each field;
//! * **Behavioural targets** — the paper's own Table 2/3/4 accuracy cells.
//!
//! At evaluation time the harness *measures* the pipeline's emergent
//! retrieval-hit rates (per model, per retrieval source, including context
//! -window truncation) and [`solver::resolve`] inverts the answer cascade
//! to find the per-model extraction skills that reproduce the targets
//! under those measured rates. If a target is unreachable given what
//! retrieval actually delivers, the skill clamps to `[0, 1]` and the
//! residual shows up in EXPERIMENTS.md — that is the honest boundary
//! between *calibrated behaviour* (model cards) and *emergent mechanism*
//! (retrieval, truncation, filtering).

pub mod answer;
pub mod cards;
pub mod context;
pub mod judge;
pub mod math_classifier;
pub mod mcq;
pub mod solver;
pub mod teacher;
pub mod trace;

pub use answer::{AnswerOutcome, ResolvedModel};
pub use cards::{BenchTargets, ModelCard, GPT4_ASTRO_REFERENCE, MODEL_CARDS};
pub use context::{AssembledContext, Passage, PassageSource};
pub use judge::{GradeResult, JudgeModel, QualityJudgment};
pub use math_classifier::MathClassifier;
pub use mcq::{BenchKind, McqItem, OPTION_LETTERS};
pub use solver::{resolve, PipelineRates};
pub use teacher::{GeneratedQuestion, QuestionDefect, TeacherModel};
pub use trace::TraceMode;
