//! `mcqa-llm` — the language-model substrate behind one provider API.
//!
//! Every model role in the paper travels through the [`ModelEndpoint`]
//! trait: a typed [`ModelRequest`]/[`ModelResponse`] envelope with a
//! batched completion API, a content-addressed [`ResponseCache`], and a
//! per-role [`CallLedger`] (see [`ModelHub`]). Consumers never touch a
//! backend type — they hold `Arc<dyn ModelEndpoint>` and go through the
//! thin role adapters:
//!
//! | Paper role | Adapter | Sim backend behind it |
//! |---|---|---|
//! | GPT-4.1 question generation | [`adapters::Teacher::generate_question`] | [`teacher::TeacherModel`] |
//! | GPT-4.1 trace distillation (3 modes) | [`adapters::Teacher::generate_trace`] | [`teacher::TeacherModel`] |
//! | LLM judge (quality scoring + grading) | [`adapters::Judge`] | [`judge::JudgeModel`] |
//! | GPT-5 math-question classifier | [`adapters::Classifier`] | [`math_classifier::MathClassifier`] |
//! | The eight evaluated SLMs (1.1B–14B) | [`adapters::Answerer`] | [`cards::ModelCard`] + [`answer::ResolvedModel`] |
//!
//! The backend is a config value ([`ModelSpec`] + [`build_endpoint`]),
//! mirroring the vector-store layer's `IndexSpec`: today's only backend is
//! the deterministic behavioural simulator ([`sim::SimEndpoint`]); a
//! remote/HTTP backend is a new variant, not a refactor.
//!
//! ## The calibration contract
//!
//! Model cards carry two kinds of numbers:
//!
//! * **Structural parameters** (context window, answer-format reliability,
//!   distractor-elimination skill, distraction susceptibility) — chosen
//!   a-priori per model and documented on each field;
//! * **Behavioural targets** — the paper's own Table 2/3/4 accuracy cells.
//!
//! At evaluation time the harness *measures* the pipeline's emergent
//! retrieval-hit rates (per model, per retrieval source, including context
//! -window truncation) and [`solver::resolve`] inverts the answer cascade
//! to find the per-model extraction skills that reproduce the targets
//! under those measured rates. If a target is unreachable given what
//! retrieval actually delivers, the skill clamps to `[0, 1]` and the
//! residual shows up in EXPERIMENTS.md — that is the honest boundary
//! between *calibrated behaviour* (model cards) and *emergent mechanism*
//! (retrieval, truncation, filtering).

pub mod adapters;
pub mod answer;
pub mod cards;
pub mod context;
pub mod endpoint;
pub mod hub;
pub mod judge;
pub mod ledger;
pub mod math_classifier;
pub mod mcq;
pub mod response_cache;
pub mod sim;
pub mod solver;
pub mod spec;
pub mod teacher;
pub mod trace;

pub use adapters::{Answerer, Classifier, Judge, QuestionPrompt, Reranker, Teacher};
pub use answer::{AnswerOutcome, Condition, ResolvedModel};
pub use cards::{BenchTargets, ModelCard, GPT4_ASTRO_REFERENCE, MODEL_CARDS};
pub use context::{AssembledContext, Passage, PassageSource};
pub use endpoint::{
    DecodeParams, ModelEndpoint, ModelRequest, ModelResponse, PartKind, PromptPart, RequestPayload,
    Role, RoleOutput,
};
pub use hub::ModelHub;
pub use judge::{GradeResult, JudgeModel, QualityJudgment};
pub use ledger::{CallLedger, RoleStats};
pub use math_classifier::MathClassifier;
pub use mcq::{BenchKind, McqItem, OPTION_LETTERS};
pub use response_cache::ResponseCache;
pub use sim::SimEndpoint;
pub use solver::{resolve, PipelineRates};
pub use spec::{build_endpoint, build_hub, ModelSpec};
pub use teacher::{GeneratedQuestion, QuestionDefect, TeacherModel};
pub use trace::TraceMode;
