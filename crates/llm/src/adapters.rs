//! Thin role adapters over `Arc<dyn ModelEndpoint>`.
//!
//! These are the only model types `mcqa-core` and `mcqa-eval` see (CI
//! enforces it): each adapter builds typed [`ModelRequest`]s for its role,
//! routes them through the endpoint — serially or via the batched API —
//! and parses the [`crate::RoleOutput`] back into domain types. Swapping the
//! backend (sim today, remote tomorrow) never touches an adapter's caller.

use std::sync::Arc;

use mcqa_ontology::FactId;
use mcqa_runtime::Executor;

use crate::answer::{AnswerOutcome, Condition, ResolvedModel};
use crate::cards::ModelCard;
use crate::context::AssembledContext;
use crate::endpoint::{ModelEndpoint, ModelRequest, PromptPart, RequestPayload};
use crate::judge::{GradeResult, QualityJudgment};
use crate::mcq::McqItem;
use crate::solver::Calibration;
use crate::teacher::GeneratedQuestion;
use crate::trace::TraceMode;

/// One question-generation prompt: the anchor fact plus the source
/// passage the teacher reads.
pub struct QuestionPrompt<'a> {
    /// The fact the question must test.
    pub fact: FactId,
    /// Distinguishes multiple questions over the same fact.
    pub salt: String,
    /// The source chunk's text (context for the teacher; counted in the
    /// prompt-token estimate, as in a real deployment).
    pub passage: &'a str,
}

/// The teacher (GPT-4.1's roles): MCQ generation + trace distillation.
#[derive(Clone)]
pub struct Teacher {
    endpoint: Arc<dyn ModelEndpoint>,
    seed: u64,
}

impl Teacher {
    /// An adapter over `endpoint`.
    pub fn new(endpoint: Arc<dyn ModelEndpoint>, seed: u64) -> Self {
        Self { endpoint, seed }
    }

    fn question_request(&self, p: &QuestionPrompt<'_>) -> ModelRequest {
        ModelRequest::new(
            vec![
                PromptPart::system(
                    "Generate one self-contained 7-option multiple-choice question grounded \
                     in the passage. Mark the correct option.",
                ),
                PromptPart::context(p.passage),
                PromptPart::user(format!("Write question {} for this passage.", p.salt)),
            ],
            RequestPayload::GenerateQuestion { fact: p.fact, salt: p.salt.clone() },
            self.seed,
        )
    }

    fn trace_request(&self, question: &GeneratedQuestion, mode: TraceMode) -> ModelRequest {
        ModelRequest::new(
            vec![
                PromptPart::system(format!(
                    "Distil a {} reasoning trace for the question. Withhold the final answer.",
                    mode.label()
                )),
                PromptPart::user(format!("{}\n{}", question.stem, question.options.join("\n"))),
            ],
            RequestPayload::DistillTrace { question: question.clone(), mode },
            self.seed,
        )
    }

    /// Generate one MCQ.
    pub fn generate_question(&self, prompt: &QuestionPrompt<'_>) -> GeneratedQuestion {
        self.endpoint.complete(&self.question_request(prompt)).output.expect_question()
    }

    /// Generate MCQs for a whole batch of prompts on `exec`'s pool
    /// (index-aligned, bit-identical to the serial path).
    pub fn generate_question_batch(
        &self,
        exec: &Executor,
        prompts: &[QuestionPrompt<'_>],
    ) -> Vec<GeneratedQuestion> {
        let reqs: Vec<ModelRequest> = prompts.iter().map(|p| self.question_request(p)).collect();
        self.endpoint
            .complete_batch(exec, &reqs)
            .into_iter()
            .map(|r| r.output.expect_question())
            .collect()
    }

    /// Distil one trace with the answer withheld.
    pub fn generate_trace(&self, question: &GeneratedQuestion, mode: TraceMode) -> String {
        self.endpoint.complete(&self.trace_request(question, mode)).output.expect_trace()
    }

    /// Distil a batch of traces on `exec`'s pool.
    pub fn generate_trace_batch(
        &self,
        exec: &Executor,
        prompts: &[(&GeneratedQuestion, TraceMode)],
    ) -> Vec<String> {
        let reqs: Vec<ModelRequest> =
            prompts.iter().map(|(q, m)| self.trace_request(q, *m)).collect();
        self.endpoint
            .complete_batch(exec, &reqs)
            .into_iter()
            .map(|r| r.output.expect_trace())
            .collect()
    }
}

/// The LLM judge: quality scoring and answer grading.
#[derive(Clone)]
pub struct Judge {
    endpoint: Arc<dyn ModelEndpoint>,
    seed: u64,
}

impl Judge {
    /// An adapter over `endpoint`.
    pub fn new(endpoint: Arc<dyn ModelEndpoint>, seed: u64) -> Self {
        Self { endpoint, seed }
    }

    fn score_request(&self, question: &GeneratedQuestion, salience: f64) -> ModelRequest {
        ModelRequest::new(
            vec![
                PromptPart::system(
                    "Score the candidate question 1-10 for clarity, accuracy, distractor \
                     plausibility and educational value.",
                ),
                PromptPart::user(format!("{}\n{}", question.stem, question.options.join("\n"))),
            ],
            RequestPayload::ScoreQuestion { question: question.clone(), salience },
            self.seed,
        )
    }

    fn grade_request(&self, completion: &str, correct: usize, n_options: usize) -> ModelRequest {
        ModelRequest::new(
            vec![
                PromptPart::system(
                    "Extract the chosen option letter and grade it against the key.",
                ),
                PromptPart::user(completion),
            ],
            RequestPayload::GradeAnswer { completion: completion.to_string(), correct, n_options },
            self.seed,
        )
    }

    /// Score one candidate question.
    pub fn score_question(&self, question: &GeneratedQuestion, salience: f64) -> QualityJudgment {
        self.endpoint.complete(&self.score_request(question, salience)).output.expect_quality()
    }

    /// Score a batch of candidates on `exec`'s pool.
    pub fn score_question_batch(
        &self,
        exec: &Executor,
        prompts: &[(&GeneratedQuestion, f64)],
    ) -> Vec<QualityJudgment> {
        let reqs: Vec<ModelRequest> =
            prompts.iter().map(|(q, s)| self.score_request(q, *s)).collect();
        self.endpoint
            .complete_batch(exec, &reqs)
            .into_iter()
            .map(|r| r.output.expect_quality())
            .collect()
    }

    /// Grade one model completion against the key.
    pub fn grade(&self, completion: &str, correct: usize, n_options: usize) -> GradeResult {
        self.endpoint
            .complete(&self.grade_request(completion, correct, n_options))
            .output
            .expect_grade()
    }
}

/// The math-question classifier (GPT-5's role).
#[derive(Clone)]
pub struct Classifier {
    endpoint: Arc<dyn ModelEndpoint>,
    seed: u64,
}

impl Classifier {
    /// An adapter over `endpoint`.
    pub fn new(endpoint: Arc<dyn ModelEndpoint>, seed: u64) -> Self {
        Self { endpoint, seed }
    }

    fn request(&self, item: &McqItem) -> ModelRequest {
        ModelRequest::new(
            vec![
                PromptPart::system(
                    "Does answering require mathematical reasoning or arithmetic tool use?",
                ),
                PromptPart::user(item.render()),
            ],
            RequestPayload::ClassifyMath { item: item.clone() },
            self.seed,
        )
    }

    /// Classify one item.
    pub fn requires_math(&self, item: &McqItem) -> bool {
        self.endpoint.complete(&self.request(item)).output.expect_math_flag()
    }

    /// Classify a batch of items on `exec`'s pool.
    pub fn classify_batch(&self, exec: &Executor, items: &[McqItem]) -> Vec<bool> {
        let reqs: Vec<ModelRequest> = items.iter().map(|i| self.request(i)).collect();
        self.endpoint
            .complete_batch(exec, &reqs)
            .into_iter()
            .map(|r| r.output.expect_math_flag())
            .collect()
    }
}

/// The cross-encoder reranker: rescoring retrieved passages against the
/// query text (the optional final stage of hybrid retrieval).
#[derive(Clone)]
pub struct Reranker {
    endpoint: Arc<dyn ModelEndpoint>,
    seed: u64,
}

impl Reranker {
    /// An adapter over `endpoint`.
    pub fn new(endpoint: Arc<dyn ModelEndpoint>, seed: u64) -> Self {
        Self { endpoint, seed }
    }

    fn request(&self, query: &str, passages: &[String]) -> ModelRequest {
        ModelRequest::new(
            vec![
                PromptPart::system("Score each passage's relevance to the query on [0, 1]."),
                PromptPart::user(format!("{query}\n---\n{}", passages.join("\n---\n"))),
            ],
            RequestPayload::Rerank { query: query.to_string(), passages: passages.to_vec() },
            self.seed,
        )
    }

    /// Relevance scores for `passages` against `query`, index-aligned.
    pub fn score(&self, query: &str, passages: &[String]) -> Vec<f64> {
        self.endpoint.complete(&self.request(query, passages)).output.expect_relevance()
    }

    /// Score a batch of (query, passages) pairs on `exec`'s pool
    /// (index-aligned, bit-identical to the serial path).
    pub fn score_batch(&self, exec: &Executor, prompts: &[(&str, Vec<String>)]) -> Vec<Vec<f64>> {
        let reqs: Vec<ModelRequest> = prompts.iter().map(|(q, ps)| self.request(q, ps)).collect();
        self.endpoint
            .complete_batch(exec, &reqs)
            .into_iter()
            .map(|r| r.output.expect_relevance())
            .collect()
    }
}

/// One evaluated SLM: a behaviour card joined with its calibration,
/// answering through the endpoint.
#[derive(Clone)]
pub struct Answerer {
    endpoint: Arc<dyn ModelEndpoint>,
    model: ResolvedModel,
    seed: u64,
}

impl Answerer {
    /// An adapter answering as `card` under `calibration`.
    pub fn new(
        endpoint: Arc<dyn ModelEndpoint>,
        card: ModelCard,
        calibration: Calibration,
        seed: u64,
    ) -> Self {
        Self { endpoint, model: ResolvedModel { card, cal: calibration }, seed }
    }

    /// The behaviour card this adapter answers as.
    pub fn card(&self) -> &ModelCard {
        &self.model.card
    }

    fn request(
        &self,
        item: &McqItem,
        condition: Condition,
        context: Option<&AssembledContext>,
    ) -> ModelRequest {
        ModelRequest::new(
            vec![
                PromptPart::system("Answer the multiple-choice question with a single letter."),
                PromptPart::user(item.render()),
            ],
            RequestPayload::Answer {
                model: self.model.clone(),
                item: item.clone(),
                condition,
                context: context.cloned(),
            },
            self.seed,
        )
    }

    /// Answer one item under `condition`.
    pub fn answer(
        &self,
        item: &McqItem,
        condition: Condition,
        context: Option<&AssembledContext>,
    ) -> AnswerOutcome {
        self.endpoint.complete(&self.request(item, condition, context)).output.expect_answer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cards::MODEL_CARDS;
    use crate::solver::{resolve, PipelineRates};
    use crate::spec::{build_hub, ModelSpec};
    use mcqa_ontology::{Ontology, OntologyConfig};

    fn setup() -> (Arc<Ontology>, Arc<dyn ModelEndpoint>) {
        let ontology = Arc::new(Ontology::generate(&OntologyConfig {
            seed: 42,
            entities_per_kind: 30,
            qualitative_facts: 400,
            quantitative_facts: 20,
        }));
        let hub: Arc<dyn ModelEndpoint> =
            Arc::new(build_hub(&ModelSpec::Sim, 42, Arc::clone(&ontology)));
        (ontology, hub)
    }

    #[test]
    fn teacher_adapter_matches_direct_simulator() {
        let (ontology, ep) = setup();
        let teacher = Teacher::new(ep, 42);
        let direct = crate::teacher::TeacherModel::new(crate::teacher::TeacherConfig {
            seed: 42,
            ..Default::default()
        });
        let f = &ontology.facts()[5];
        let via = teacher.generate_question(&QuestionPrompt {
            fact: f.id,
            salt: "c1".into(),
            passage: "The passage.",
        });
        assert_eq!(via, direct.generate_question(&ontology, f, "c1"));
        for mode in TraceMode::ALL {
            assert_eq!(
                teacher.generate_trace(&via, mode),
                direct.generate_trace(&ontology, &via, mode)
            );
        }
    }

    #[test]
    fn batch_apis_match_serial() {
        let (ontology, ep) = setup();
        let teacher = Teacher::new(ep.clone(), 42);
        let prompts: Vec<QuestionPrompt> = ontology
            .facts()
            .iter()
            .take(12)
            .map(|f| QuestionPrompt { fact: f.id, salt: "c0".into(), passage: "p" })
            .collect();
        let exec = Executor::global();
        let batch = teacher.generate_question_batch(exec, &prompts);
        let serial: Vec<GeneratedQuestion> =
            prompts.iter().map(|p| teacher.generate_question(p)).collect();
        assert_eq!(batch, serial);

        let judge = Judge::new(ep.clone(), 42);
        let scored: Vec<(&GeneratedQuestion, f64)> = batch.iter().map(|q| (q, 0.5)).collect();
        let js = judge.score_question_batch(exec, &scored);
        assert_eq!(js.len(), 12);
        for (j, (q, s)) in js.iter().zip(&scored) {
            assert_eq!(j, &judge.score_question(q, *s));
        }
    }

    #[test]
    fn answerer_routes_the_calibrated_cascade() {
        let (_, ep) = setup();
        let card = MODEL_CARDS[3].clone();
        let cal = resolve(&card, &PipelineRates::nominal());
        let direct = ResolvedModel { card: card.clone(), cal: cal.clone() };
        let answerer = Answerer::new(ep, card, cal, 42);
        let item = crate::mcq::test_item();
        let via = answerer.answer(&item, Condition::Baseline, None);
        assert_eq!(via, direct.answer(&item, Condition::Baseline, None, 42));
        assert_eq!(answerer.card().name, "SmolLM3-3B");
    }

    #[test]
    fn reranker_adapter_is_deterministic_and_batches() {
        let (_, ep) = setup();
        let reranker = Reranker::new(ep, 42);
        let passages = vec![
            "the star formation rate of the galaxy".to_string(),
            "sourdough starter maintenance".to_string(),
        ];
        let serial = reranker.score("star formation in galaxies", &passages);
        assert_eq!(serial.len(), 2);
        assert!(serial[0] > serial[1]);
        let batch = reranker.score_batch(
            Executor::global(),
            &vec![("star formation in galaxies", passages.clone()); 3],
        );
        assert_eq!(batch, vec![serial.clone(), serial.clone(), serial]);
    }

    #[test]
    fn classifier_and_judge_adapters_work() {
        let (_, ep) = setup();
        let classifier = Classifier::new(ep.clone(), 42);
        let item = crate::mcq::test_item();
        assert!(!classifier.requires_math(&item));
        assert_eq!(
            classifier.classify_batch(Executor::global(), std::slice::from_ref(&item)),
            vec![false]
        );

        let judge = Judge::new(ep, 42);
        let g = judge.grade("Answer: C", 2, 7);
        assert!(g.correct);
    }
}
