//! Multiple-choice question items as the evaluator sees them.

use mcqa_ontology::FactId;
use serde::{Deserialize, Serialize};

/// Option letters for up to ten options.
pub const OPTION_LETTERS: [char; 10] = ['A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J'];

/// Which benchmark an item belongs to — determines option count, phrasing
/// style, and which card targets apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchKind {
    /// The pipeline-generated synthetic benchmark (7 options, paper §3.1).
    Synthetic,
    /// The expert-written Astro exam (5 options, paper §3.2).
    AstroExam,
}

impl BenchKind {
    /// Options per question on this benchmark.
    pub fn n_options(self) -> usize {
        match self {
            BenchKind::Synthetic => 7,
            BenchKind::AstroExam => 5,
        }
    }
}

/// One MCQ item ready for evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McqItem {
    /// Stable question id (also the retrieval external id for traces).
    pub qid: u64,
    /// The benchmark this item belongs to.
    pub bench: BenchKind,
    /// The supporting fact (ground truth; drives the knowledge probe).
    pub fact: FactId,
    /// Question stem.
    pub stem: String,
    /// Options in display order.
    pub options: Vec<String>,
    /// Index of the correct option.
    pub correct: usize,
    /// Fact difficulty in `[0, 1]`.
    pub difficulty: f64,
    /// True when the item needs quantitative reasoning (exam only).
    pub is_math: bool,
}

impl McqItem {
    /// The correct option's letter.
    pub fn correct_letter(&self) -> char {
        OPTION_LETTERS[self.correct]
    }

    /// The correct option's text.
    pub fn correct_text(&self) -> &str {
        &self.options[self.correct]
    }

    /// Render the question as prompt text (stem + lettered options).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.stem.len() + 64);
        out.push_str(&self.stem);
        out.push('\n');
        for (i, opt) in self.options.iter().enumerate() {
            out.push_str(&format!("{}. {}\n", OPTION_LETTERS[i], opt));
        }
        out
    }

    /// Structural validity: unique non-empty options, in-range answer.
    pub fn validate(&self) -> Result<(), String> {
        if self.options.len() != self.bench.n_options() {
            return Err(format!(
                "expected {} options, got {}",
                self.bench.n_options(),
                self.options.len()
            ));
        }
        if self.correct >= self.options.len() {
            return Err("correct index out of range".to_string());
        }
        let mut seen = std::collections::HashSet::new();
        for o in &self.options {
            if o.trim().is_empty() {
                return Err("empty option".to_string());
            }
            if !seen.insert(o) {
                return Err(format!("duplicate option {o:?}"));
            }
        }
        if self.stem.trim().is_empty() {
            return Err("empty stem".to_string());
        }
        Ok(())
    }
}

/// A structurally valid synthetic item for this crate's unit tests.
#[cfg(test)]
pub(crate) fn test_item() -> McqItem {
    McqItem {
        qid: 7,
        bench: BenchKind::Synthetic,
        fact: FactId(3),
        stem: "Which pathway does TRK2 activate after irradiation?".into(),
        options: (0..7).map(|i| format!("candidate {i}")).collect(),
        correct: 2,
        difficulty: 0.4,
        is_math: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item() -> McqItem {
        McqItem {
            qid: 1,
            bench: BenchKind::AstroExam,
            fact: FactId(9),
            stem: "Which is true?".into(),
            options: vec!["a".into(), "b".into(), "c".into(), "d".into(), "e".into()],
            correct: 2,
            difficulty: 0.4,
            is_math: false,
        }
    }

    #[test]
    fn letters_and_text() {
        let q = item();
        assert_eq!(q.correct_letter(), 'C');
        assert_eq!(q.correct_text(), "c");
    }

    #[test]
    fn render_contains_all_options() {
        let r = item().render();
        for l in ["A. a", "B. b", "C. c", "D. d", "E. e"] {
            assert!(r.contains(l), "{r}");
        }
        assert!(r.starts_with("Which is true?"));
    }

    #[test]
    fn option_counts_per_bench() {
        assert_eq!(BenchKind::Synthetic.n_options(), 7);
        assert_eq!(BenchKind::AstroExam.n_options(), 5);
    }

    #[test]
    fn validation() {
        assert!(item().validate().is_ok());
        let mut wrong_count = item();
        wrong_count.options.pop();
        assert!(wrong_count.validate().is_err());
        let mut dup = item();
        dup.options[1] = "a".into();
        assert!(dup.validate().is_err());
        let mut oob = item();
        oob.correct = 9;
        assert!(oob.validate().is_err());
        let mut empty_stem = item();
        empty_stem.stem = "  ".into();
        assert!(empty_stem.validate().is_err());
    }
}
