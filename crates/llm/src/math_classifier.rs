//! The GPT-5 stand-in: classifying exam questions as requiring
//! mathematical reasoning (paper §2.2 uses GPT-5 to pick the 189-question
//! no-math subset out of 335).

use crate::mcq::McqItem;

/// Keyword evidence for quantitative reasoning.
const MATH_KEYWORDS: &[&str] = &[
    "calculate",
    "compute",
    "what is the dose",
    "what is its activity",
    "surviving fraction",
    "bed",
    "eqd2",
    "half-life",
    "dose rate",
    "oer of",
    "fractions of",
    "activity of",
    "how many",
    "what dose",
];

/// Units that almost always mark a numeric answer.
const UNIT_MARKERS: &[&str] = &["gy", "mbq", "cgy/h", "gy."];

/// The math-question classifier.
#[derive(Debug, Clone, Default)]
pub struct MathClassifier;

impl MathClassifier {
    /// Create a classifier.
    pub fn new() -> Self {
        Self
    }

    /// True when the item requires mathematical reasoning or arithmetic
    /// tool use. Evidence combined:
    ///
    /// 1. math keywords in the stem,
    /// 2. numeric parameters in the stem **and** predominantly numeric
    ///    options.
    pub fn requires_math(&self, item: &McqItem) -> bool {
        let stem = item.stem.to_lowercase();
        let keyword_hit = MATH_KEYWORDS.iter().any(|k| stem.contains(k));

        let stem_has_numbers = stem.chars().filter(|c| c.is_ascii_digit()).count() >= 2;
        let numeric_options = item
            .options
            .iter()
            .filter(|o| {
                let lower = o.to_lowercase();
                let digits = lower.chars().filter(|c| c.is_ascii_digit()).count();
                digits >= 1
                    && (UNIT_MARKERS.iter().any(|u| lower.contains(u))
                        || lower.chars().all(|c| {
                            c.is_ascii_digit() || c == '.' || c == '-' || c.is_whitespace()
                        }))
            })
            .count();
        let mostly_numeric = numeric_options * 2 > item.options.len();

        keyword_hit || (stem_has_numbers && mostly_numeric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcq::BenchKind;
    use mcqa_ontology::FactId;

    fn item(stem: &str, options: Vec<&str>) -> McqItem {
        McqItem {
            qid: 0,
            bench: BenchKind::AstroExam,
            fact: FactId(0),
            stem: stem.to_string(),
            options: options.into_iter().map(String::from).collect(),
            correct: 0,
            difficulty: 0.5,
            is_math: false,
        }
    }

    #[test]
    fn detects_dose_calculations() {
        let c = MathClassifier::new();
        let q = item(
            "A schedule delivers 30 fractions of 2 Gy to a tissue with α/β = 10 Gy. \
             What is the biologically effective dose (BED)?",
            vec!["72.0 Gy", "60.0 Gy", "66.0 Gy", "80.0 Gy", "75.0 Gy"],
        );
        assert!(c.requires_math(&q));
    }

    #[test]
    fn detects_decay_problems() {
        let c = MathClassifier::new();
        let q = item(
            "A source has an initial activity of 100 MBq and a half-life of 10 days. \
             What is its activity after 20.0 days?",
            vec!["25.0 MBq", "50.0 MBq", "12.5 MBq", "75.0 MBq", "30.0 MBq"],
        );
        assert!(c.requires_math(&q));
    }

    #[test]
    fn recall_questions_not_math() {
        let c = MathClassifier::new();
        let q = item(
            "The principal downstream effector of TRK2 is:",
            vec!["apoptosis", "autophagy", "senescence", "necroptosis", "ferroptosis"],
        );
        assert!(!c.requires_math(&q));
    }

    #[test]
    fn entity_names_with_digits_not_math() {
        // "HX-29", "p53" style options must not trip the classifier.
        let c = MathClassifier::new();
        let q = item(
            "In which cell line is VRK4 characteristically mutated?",
            vec!["HX-29", "U87", "KM-412", "T339", "RV-18"],
        );
        assert!(!c.requires_math(&q));
    }

    #[test]
    fn accuracy_on_generated_exam_items() {
        // Against ground truth from the quantitative-fact generator.
        let ont = mcqa_ontology::Ontology::generate(&mcqa_ontology::OntologyConfig {
            seed: 42,
            entities_per_kind: 30,
            qualitative_facts: 300,
            quantitative_facts: 100,
        });
        let c = MathClassifier::new();
        let mut correct = 0usize;
        let mut total = 0usize;
        // Math items from quant facts.
        for q in ont.quant_facts() {
            let (stem, answer) = mcqa_ontology::realize::math_stem(q);
            let mut options = vec![answer];
            options.extend(
                q.distinct_distractors()
                    .into_iter()
                    .take(4)
                    .map(|d| mcqa_ontology::realize::format_quantity(d, &q.unit)),
            );
            let it = item(&stem, options.iter().map(String::as_str).collect());
            total += 1;
            if c.requires_math(&it) {
                correct += 1;
            }
        }
        // Non-math items from qualitative facts (exam style).
        for f in ont.facts().iter().take(100) {
            let (stem, answer) = mcqa_ontology::realize::question(
                f,
                ont.registry(),
                mcqa_ontology::realize::QuestionStyle::Exam,
            );
            let it = item(&stem, vec![&answer, "x1", "x2", "x3", "x4"]);
            total += 1;
            if !c.requires_math(&it) {
                correct += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc >= 0.95, "classifier accuracy {acc:.3}");
    }
}
