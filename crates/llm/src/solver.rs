//! Inverting the answer cascade: from paper targets + measured retrieval
//! rates to forward simulation parameters.
//!
//! The cascade for a non-math question is
//!
//! ```text
//! acc = F · [ h · (E + (1−E)·P_ctx)  +  (1−h) · P_ctx ]
//!
//! P_self = K + (1−K)·g               (no context: own knowledge)
//! P_ctx  = K·(1−D) + (1−K·(1−D))·g   (context present: distraction
//!                                     competes with knowledge whenever
//!                                     extraction does not succeed)
//! ```
//!
//! where `F` = format reliability, `g` = elimination-adjusted guess
//! probability, `K` = effective knowledge coverage, `D` = distraction
//! susceptibility, `h` = *measured* usable-hit rate and `E` = extraction
//! skill. Baselines give `K` (set `h = 0, D = 0`); each RAG target then
//! gives `E` under the measured `h`. Values clamp to `[0, 1]`; residuals
//! are reported so EXPERIMENTS.md can show where the mechanism could not
//! reach the paper's number.

use serde::{Deserialize, Serialize};

use crate::cards::ModelCard;
use crate::trace::TraceMode;

/// Measured usable-hit rates for one model (after its window truncation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineRates {
    /// P(supporting chunk in window | synthetic benchmark question).
    pub synth_chunk: f64,
    /// Same for each trace mode on the synthetic benchmark.
    pub synth_trace: [f64; 3],
    /// P(supporting chunk in window | Astro non-math question).
    pub astro_chunk: f64,
    /// P(supporting trace in window | Astro non-math question), per mode.
    pub astro_trace: [f64; 3],
}

impl PipelineRates {
    /// A neutral default for tests (roughly what the real pipeline yields
    /// for a large-window model).
    pub fn nominal() -> Self {
        Self {
            synth_chunk: 0.85,
            synth_trace: [0.97, 0.97, 0.97],
            astro_chunk: 0.45,
            astro_trace: [0.65, 0.65, 0.65],
        }
    }
}

/// One solved (clamped) parameter with its residual target error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolvedParam {
    /// Which parameter (e.g. `"E[synth,chunks]"`).
    pub name: String,
    /// The clamped value in `[0, 1]`.
    pub value: f64,
    /// `achieved − target` accuracy at the clamped value (0 when the
    /// target was exactly reachable).
    pub residual: f64,
}

/// The forward parameters for one model after calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Effective knowledge coverage on the synthetic benchmark.
    pub k_synth: f64,
    /// Effective knowledge coverage on exam-style questions.
    pub k_exam: f64,
    /// Extraction skill from chunks on the synthetic benchmark.
    pub e_synth_chunk: f64,
    /// Extraction skill from traces (per mode) on the synthetic benchmark.
    pub e_synth_trace: [f64; 3],
    /// Extraction skill from chunks on the exam.
    pub e_exam_chunk: f64,
    /// Extraction skill from traces (per mode) on the exam.
    pub e_exam_trace: [f64; 3],
    /// Math-question accuracy under `[baseline, chunks, traces]`.
    pub math: [f64; 3],
    /// Solve diagnostics.
    pub solved: Vec<SolvedParam>,
}

/// Forward accuracy for given parameters (the cascade above).
///
/// With `h = 0` and `d = 0` this is the no-context baseline; with context
/// present the distraction factor applies to every non-extraction path.
pub fn forward_accuracy(f: f64, h: f64, e: f64, k: f64, d: f64, g: f64) -> f64 {
    let keff = k * (1.0 - d);
    let p_ctx = keff + (1.0 - keff) * g;
    f * (h * (e + (1.0 - e) * p_ctx) + (1.0 - h) * p_ctx)
}

/// Solve `K` from a no-retrieval baseline: `acc = F·(K + (1−K)·g)`.
fn solve_k(target: f64, f: f64, g: f64) -> (f64, f64) {
    let raw = (target / f.max(1e-9) - g) / (1.0 - g).max(1e-9);
    let k = raw.clamp(0.0, 1.0);
    let achieved = f * (k + (1.0 - k) * g);
    (k, achieved - target)
}

/// Solve `E` from a RAG target given the other parameters.
fn solve_e(target: f64, f: f64, h: f64, k: f64, d: f64, g: f64) -> (f64, f64) {
    let keff = k * (1.0 - d);
    let p_ctx = keff + (1.0 - keff) * g;
    let denom = h * (1.0 - p_ctx);
    let raw = if denom <= 1e-9 {
        // Retrieval never hits (or the context path saturates): extraction
        // skill is unidentifiable; keep it at a neutral midpoint.
        0.5
    } else {
        (target / f.max(1e-9) - p_ctx) / denom
    };
    let e = raw.clamp(0.0, 1.0);
    let achieved = forward_accuracy(f, h, e, k, d, g);
    (e, achieved - target)
}

/// Calibrate one model card against measured rates.
pub fn resolve(card: &ModelCard, rates: &PipelineRates) -> Calibration {
    let g7 = card.guess_prob(7);
    let g5 = card.guess_prob(5);
    let t = &card.targets;
    let mut solved = Vec::new();
    let mut record = |name: &str, value: f64, residual: f64| {
        solved.push(SolvedParam { name: name.to_string(), value, residual });
        value
    };

    let (k_synth, r) = solve_k(t.synth_baseline, card.format_synth, g7);
    record("K[synth]", k_synth, r);
    let (k_exam, r) = solve_k(t.astro_nomath_baseline, card.format_exam, g5);
    record("K[exam]", k_exam, r);

    let (e_sc, r) = solve_e(
        t.synth_chunks,
        card.format_synth,
        rates.synth_chunk,
        k_synth,
        card.distraction,
        g7,
    );
    record("E[synth,chunks]", e_sc, r);

    let mut e_synth_trace = [0.0f64; 3];
    for (i, mode) in TraceMode::ALL.iter().enumerate() {
        let (e, r) = solve_e(
            t.synth_rt[i],
            card.format_synth,
            rates.synth_trace[i],
            k_synth,
            card.distraction,
            g7,
        );
        e_synth_trace[i] = e;
        record(&format!("E[synth,{}]", mode.label()), e, r);
    }

    let (e_ec, r) = solve_e(
        t.astro_nomath_chunks,
        card.format_exam,
        rates.astro_chunk,
        k_exam,
        card.distraction,
        g5,
    );
    record("E[exam,chunks]", e_ec, r);

    let mut e_exam_trace = [0.0f64; 3];
    for (i, mode) in TraceMode::ALL.iter().enumerate() {
        let (e, r) = solve_e(
            t.astro_nomath_rt_best,
            card.format_exam,
            rates.astro_trace[i],
            k_exam,
            card.distraction,
            g5,
        );
        e_exam_trace[i] = e;
        record(&format!("E[exam,{}]", mode.label()), e, r);
    }

    let math = t.math_targets();

    Calibration {
        k_synth,
        k_exam,
        e_synth_chunk: e_sc,
        e_synth_trace,
        e_exam_chunk: e_ec,
        e_exam_trace,
        math,
        solved,
    }
}

/// A nominally-calibrated model for this crate's unit tests.
#[cfg(test)]
pub(crate) fn test_resolved_model() -> crate::answer::ResolvedModel {
    let card = crate::cards::MODEL_CARDS[0].clone();
    let cal = resolve(&card, &PipelineRates::nominal());
    crate::answer::ResolvedModel { card, cal }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cards::MODEL_CARDS;

    #[test]
    fn baseline_roundtrips_through_forward_model() {
        for card in &MODEL_CARDS {
            let cal = resolve(card, &PipelineRates::nominal());
            let g7 = card.guess_prob(7);
            // h = 0 reproduces the baseline exactly (K was solved from it).
            let acc = forward_accuracy(card.format_synth, 0.0, 0.0, cal.k_synth, 0.0, g7);
            assert!(
                (acc - card.targets.synth_baseline).abs() < 1e-9,
                "{}: baseline {acc} vs {}",
                card.name,
                card.targets.synth_baseline
            );
        }
    }

    #[test]
    fn rag_targets_roundtrip_when_unclamped() {
        let rates = PipelineRates::nominal();
        for card in &MODEL_CARDS {
            let cal = resolve(card, &rates);
            let g7 = card.guess_prob(7);
            let acc = forward_accuracy(
                card.format_synth,
                rates.synth_chunk,
                cal.e_synth_chunk,
                cal.k_synth,
                card.distraction,
                g7,
            );
            // Within clamping, the forward model must hit the target.
            let resid = cal.solved.iter().find(|s| s.name == "E[synth,chunks]").unwrap().residual;
            assert!(
                (acc - (card.targets.synth_chunks + resid)).abs() < 1e-9,
                "{}: acc {acc}",
                card.name
            );
        }
    }

    #[test]
    fn all_params_in_unit_interval() {
        for card in &MODEL_CARDS {
            let cal = resolve(card, &PipelineRates::nominal());
            let mut vals = vec![cal.k_synth, cal.k_exam, cal.e_synth_chunk, cal.e_exam_chunk];
            vals.extend(cal.e_synth_trace);
            vals.extend(cal.e_exam_trace);
            vals.extend(cal.math);
            for v in vals {
                assert!((0.0..=1.0).contains(&v), "{}: {v}", card.name);
            }
        }
    }

    #[test]
    fn stronger_models_know_more() {
        let by_name = |n: &str| {
            let c = MODEL_CARDS.iter().find(|c| c.name == n).unwrap();
            resolve(c, &PipelineRates::nominal()).k_synth
        };
        assert!(by_name("Llama-3-8B-Instruct") > by_name("OLMo-7B"));
        assert!(by_name("OLMo-7B") > by_name("TinyLlama-1.1B-Chat"));
    }

    #[test]
    fn trace_extraction_exceeds_chunk_extraction_on_synth() {
        // The paper's central claim, reflected in solved skills under
        // nominal rates: traces are easier to use than chunks.
        for card in &MODEL_CARDS {
            let cal = resolve(card, &PipelineRates::nominal());
            let best_trace = cal.e_synth_trace.iter().cloned().fold(0.0, f64::max);
            assert!(
                best_trace >= cal.e_synth_chunk * 0.9,
                "{}: trace {best_trace} vs chunk {}",
                card.name,
                cal.e_synth_chunk
            );
        }
    }

    #[test]
    fn zero_hit_rate_degenerates_gracefully() {
        let card = &MODEL_CARDS[0];
        let rates = PipelineRates {
            synth_chunk: 0.0,
            synth_trace: [0.0; 3],
            astro_chunk: 0.0,
            astro_trace: [0.0; 3],
        };
        let cal = resolve(card, &rates);
        assert!((0.0..=1.0).contains(&cal.e_synth_chunk));
        // With h=0 the forward accuracy equals the miss branch regardless
        // of E.
        let g7 = card.guess_prob(7);
        let acc = forward_accuracy(
            card.format_synth,
            0.0,
            cal.e_synth_chunk,
            cal.k_synth,
            card.distraction,
            g7,
        );
        assert!(acc < card.targets.synth_chunks, "unreachable target shows as residual");
    }

    #[test]
    fn residuals_reported_for_unreachable_targets() {
        let card = &MODEL_CARDS[1]; // TinyLlama: huge RAG gains
        let rates = PipelineRates {
            synth_chunk: 0.1, // far too low to reach 0.434 from 0.176
            synth_trace: [0.97; 3],
            astro_chunk: 0.45,
            astro_trace: [0.65; 3],
        };
        let cal = resolve(card, &rates);
        let chunk_param = cal.solved.iter().find(|s| s.name == "E[synth,chunks]").unwrap();
        assert!(
            chunk_param.residual < -0.05,
            "clamped solve must report shortfall: {chunk_param:?}"
        );
        assert_eq!(chunk_param.value, 1.0, "skill clamps at its ceiling");
    }
}
