//! A concurrent content-addressed completion cache.
//!
//! Keys are [`crate::ModelRequest::cache_key`] — fnv1a over the canonical
//! request encoding, the same shape as the embedding cache in
//! `mcqa-embed`. Because every backend is a deterministic function of the
//! request, a cached response is indistinguishable from a fresh one; the
//! cache exists so repeated evaluation passes (the no-math subset re-answers
//! the full set's items, ablations re-run conditions, repeated `run_cards`
//! calls) skip regeneration entirely.

use parking_lot::RwLock;
use std::collections::HashMap;

use crate::endpoint::ModelResponse;

/// The cache: `request content address → response`.
#[derive(Default)]
pub struct ResponseCache {
    map: RwLock<HashMap<u64, ModelResponse>>,
}

impl ResponseCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a response by content address.
    pub fn get(&self, key: u64) -> Option<ModelResponse> {
        self.map.read().get(&key).cloned()
    }

    /// Store a response under its content address.
    pub fn insert(&self, key: u64, response: ModelResponse) {
        self.map.write().insert(key, response);
    }

    /// Number of cached completions.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached completion (e.g. between unrelated runs).
    pub fn clear(&self) {
        self.map.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{ModelRequest, PromptPart, RequestPayload, RoleOutput};

    fn response(text: &str) -> ModelResponse {
        let req = ModelRequest::new(
            vec![PromptPart::user(text)],
            RequestPayload::GradeAnswer { completion: text.into(), correct: 0, n_options: 5 },
            1,
        );
        ModelResponse::from_output(&req, text.to_string(), RoleOutput::MathFlag(false))
    }

    #[test]
    fn stores_and_retrieves() {
        let cache = ResponseCache::new();
        assert!(cache.is_empty());
        assert!(cache.get(7).is_none());
        cache.insert(7, response("Answer: A"));
        assert_eq!(cache.get(7).unwrap().text, "Answer: A");
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_use() {
        let cache = ResponseCache::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..50u64 {
                        let key = (i + t) % 10;
                        if cache.get(key).is_none() {
                            cache.insert(key, response(&format!("r{key}")));
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), 10);
    }
}
