//! Property tests for the merkle change detector: `diff` must report
//! exactly the documents a brute-force comparison of the two id → hash
//! maps reports — complete (no changed document missed) and sound (no
//! unchanged document flagged) — on randomized collections, including the
//! empty → N and N → empty degenerate transitions.

use std::collections::BTreeMap;

use mcqa_ingest::{diff, ChangeSet, ContentHash, MerkleTree};
use mcqa_util::KeyedStochastic;
use proptest::prelude::*;

fn hash_of(body: u64) -> ContentHash {
    ContentHash::of_bytes(&body.to_le_bytes())
}

/// Brute force: walk both maps and classify every id.
fn brute_force(old: &BTreeMap<u64, ContentHash>, new: &BTreeMap<u64, ContentHash>) -> ChangeSet {
    let mut cs = ChangeSet::default();
    for (id, h) in new {
        match old.get(id) {
            None => cs.added.push(*id),
            Some(prev) if prev != h => cs.modified.push(*id),
            Some(_) => {}
        }
    }
    for id in old.keys() {
        if !new.contains_key(id) {
            cs.removed.push(*id);
        }
    }
    cs
}

fn tree(map: &BTreeMap<u64, ContentHash>) -> MerkleTree {
    MerkleTree::from_items(map.iter().map(|(id, h)| (*id, *h)).collect())
}

proptest! {
    /// Random old/new collections over a shared id universe: the merkle
    /// diff equals the brute-force classification exactly.
    #[test]
    fn diff_is_complete_and_sound(seed in 0u64..192) {
        let rng = KeyedStochastic::new(seed ^ 0xD1FF);
        // Sparse ids across the full u64 range plus a dense low block, so
        // both deep and shallow trie splits get exercised.
        let universe = rng.below(60, &["universe"]);
        let mut old = BTreeMap::new();
        let mut new = BTreeMap::new();
        for i in 0..universe {
            let it = i.to_string();
            let id = if rng.bernoulli(0.5, &["wide", &it]) {
                rng.raw(&["id", &it])
            } else {
                rng.raw(&["id", &it]) % 64
            };
            let body = rng.raw(&["content", &it]);
            let in_old = rng.bernoulli(0.6, &["old", &it]);
            let in_new = rng.bernoulli(0.6, &["new", &it]);
            let mutated = rng.bernoulli(0.3, &["mut", &it]);
            if in_old {
                old.insert(id, hash_of(body));
            }
            if in_new {
                new.insert(id, hash_of(if mutated { body ^ 1 } else { body }));
            }
        }

        let expected = brute_force(&old, &new);
        let got = diff(&tree(&old), &tree(&new));
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(got.len(), expected.added.len() + expected.modified.len() + expected.removed.len());

        // Self-diff is empty, and root hashes agree with emptiness.
        prop_assert!(diff(&tree(&new), &tree(&new)).is_empty());
        prop_assert_eq!(
            tree(&old).root_hash() == tree(&new).root_hash(),
            got.is_empty(),
            "root hashes must agree exactly when nothing changed"
        );
    }
}

#[test]
fn empty_to_n_is_all_added() {
    let items: BTreeMap<u64, ContentHash> = (0..37u64).map(|id| (id * 1000, hash_of(id))).collect();
    let got = diff(&MerkleTree::from_items(Vec::new()), &tree(&items));
    assert_eq!(got, ChangeSet::all_added(items.keys().copied()));
    assert_eq!(got.len(), 37);
}

#[test]
fn n_to_empty_is_all_removed() {
    let items: BTreeMap<u64, ContentHash> = (0..37u64).map(|id| (id * 1000, hash_of(id))).collect();
    let got = diff(&tree(&items), &MerkleTree::from_items(Vec::new()));
    assert!(got.added.is_empty() && got.modified.is_empty());
    assert_eq!(got.removed, items.keys().copied().collect::<Vec<_>>());
}

#[test]
fn empty_to_empty_is_empty() {
    let empty = MerkleTree::from_items(Vec::new());
    assert!(diff(&empty, &MerkleTree::from_items(Vec::new())).is_empty());
    assert_eq!(empty.root_hash(), MerkleTree::from_items(Vec::new()).root_hash());
}
