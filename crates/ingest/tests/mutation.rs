//! Property tests for the mutation surface the incremental planner
//! drives: random edit sequences (upsert / remove / compact) over every
//! mutable index family must leave search results identical to an index
//! holding only the final live set.
//!
//! The reference differs per family, matching the determinism contract:
//!
//! * **flat** and **lexical** — a cold rebuild from scratch over the live
//!   set (per-row scores are insertion-order independent, BM25 statistics
//!   are live-corrected), bit for bit;
//! * **ivf** / **pq** — a decode of the store's own serialised live view
//!   (`to_bytes` drops tombstones), i.e. a rebuild reusing the same
//!   trained coarse structure. A from-scratch rebuild would retrain
//!   k-means on the edited collection and legitimately rank differently.

use std::collections::BTreeMap;

use mcqa_embed::Precision;
use mcqa_index::{build_store_from_vectors, decode_store, IndexSpec, Metric};
use mcqa_ingest::{ContentHash, IngestManifest};
use mcqa_lexical::{Bm25Params, LexicalIndex};
use mcqa_runtime::Executor;
use mcqa_util::KeyedStochastic;
use proptest::prelude::*;

const DIM: usize = 8;

/// A deterministic unit-free vector keyed by (tag, id).
fn vector(rng: &KeyedStochastic, tag: &str, id: u64) -> Vec<f32> {
    (0..DIM)
        .map(|d| {
            let u = rng.uniform(&["vec", tag, &id.to_string(), &d.to_string()]);
            (u * 2.0 - 1.0) as f32
        })
        .collect()
}

/// A deterministic pseudo-document keyed by (tag, id): a handful of words
/// from a tiny vocabulary, so postings overlap across documents.
fn text(rng: &KeyedStochastic, tag: &str, id: u64) -> String {
    const WORDS: [&str; 12] = [
        "proton",
        "dose",
        "tumour",
        "margin",
        "gene",
        "pathway",
        "kinase",
        "imaging",
        "therapy",
        "expression",
        "receptor",
        "trial",
    ];
    let n = 3 + rng.below(6, &["len", tag, &id.to_string()]);
    (0..n)
        .map(|w| WORDS[rng.below(WORDS.len(), &["w", tag, &id.to_string(), &w.to_string()])])
        .collect::<Vec<_>>()
        .join(" ")
}

/// The shared edit-sequence shape: at step `s`, op 0 = upsert a small
/// batch (half fresh ids, half overwrites), op 1 = remove a prefix of the
/// live set (possibly all of it), op 2 = compact.
fn op_at(rng: &KeyedStochastic, s: usize) -> usize {
    rng.below(3, &["op", &s.to_string()])
}

proptest! {
    /// Dense stores: after any edit sequence, the mutated store's search
    /// equals a decode of its own serialised live view — and on flat, a
    /// genuine from-scratch rebuild over the live set, bit for bit.
    #[test]
    fn dense_mutation_matches_rebuild(
        seed in 0u64..24,
        spec_pick in 0usize..3,
        workers_pick in 0usize..2,
    ) {
        let spec = match spec_pick {
            0 => IndexSpec::Flat,
            1 => IndexSpec::Ivf(Default::default()),
            _ => IndexSpec::Pq(Default::default()),
        };
        let exec = Executor::new([1, 4][workers_pick]);
        let rng = KeyedStochastic::new(seed ^ 0x317A_B00C);

        let n0 = 8 + rng.below(24, &["n0"]) as u64;
        let mut live: BTreeMap<u64, Vec<f32>> =
            (0..n0).map(|id| (id, vector(&rng, "init", id))).collect();
        let items: Vec<(u64, Vec<f32>)> = live.iter().map(|(k, v)| (*k, v.clone())).collect();
        let mut store =
            build_store_from_vectors(&spec, DIM, Metric::Cosine, Precision::F32, &exec, &items);

        let steps = 1 + rng.below(12, &["steps"]);
        let mut next_id = n0;
        for s in 0..steps {
            let st = s.to_string();
            match op_at(&rng, s) {
                0 => {
                    let m = 1 + rng.below(4, &["m", &st]);
                    let mut batch: BTreeMap<u64, Vec<f32>> = BTreeMap::new();
                    for j in 0..m {
                        let jt = format!("{s}.{j}");
                        let id = if live.is_empty() || rng.bernoulli(0.5, &["new", &jt]) {
                            next_id += 1;
                            next_id
                        } else {
                            *live.keys().nth(rng.below(live.len(), &["pick", &jt])).expect("live")
                        };
                        batch.insert(id, vector(&rng, &jt, id));
                    }
                    let batch: Vec<(u64, Vec<f32>)> = batch.into_iter().collect();
                    live.extend(batch.iter().cloned());
                    store.upsert(&exec, &batch);
                }
                1 => {
                    let m = rng.below(live.len() + 1, &["rm", &st]);
                    let ids: Vec<u64> = live.keys().copied().take(m).collect();
                    for id in &ids {
                        live.remove(id);
                    }
                    prop_assert_eq!(store.remove(&ids), ids.len());
                }
                _ => store.compact(&exec),
            }
        }

        prop_assert_eq!(store.len(), live.len());
        let roundtrip = decode_store(&store.to_bytes()).expect("live view decodes");
        prop_assert_eq!(roundtrip.len(), live.len());
        prop_assert_eq!(roundtrip.tombstones(), 0, "serialised view carries no tombstones");

        let queries: Vec<Vec<f32>> = (0..5).map(|q| vector(&rng, "query", q)).collect();
        for q in &queries {
            prop_assert_eq!(store.search(q, 10), roundtrip.search(q, 10));
        }
        if matches!(spec, IndexSpec::Flat) {
            let items: Vec<(u64, Vec<f32>)> = live.iter().map(|(k, v)| (*k, v.clone())).collect();
            let cold =
                build_store_from_vectors(&spec, DIM, Metric::Cosine, Precision::F32, &exec, &items);
            for q in &queries {
                prop_assert_eq!(store.search(q, 10), cold.search(q, 10));
            }
        }
    }

    /// The lexical index: any edit sequence is bit-identical to a cold
    /// BM25 rebuild over the final live set — document frequencies,
    /// lengths, and the corpus average all correct themselves as
    /// tombstones accrue.
    #[test]
    fn lexical_mutation_matches_rebuild(seed in 0u64..32, workers_pick in 0usize..2) {
        let exec = Executor::new([1, 4][workers_pick]);
        let rng = KeyedStochastic::new(seed ^ 0x1E_C1A1);

        let n0 = 8 + rng.below(24, &["n0"]) as u64;
        let mut live: BTreeMap<u64, String> =
            (0..n0).map(|id| (id, text(&rng, "init", id))).collect();
        let mut index = LexicalIndex::new(Bm25Params::default());
        let items: Vec<(u64, String)> = live.iter().map(|(k, v)| (*k, v.clone())).collect();
        index.add_batch(&exec, &items);

        let steps = 1 + rng.below(12, &["steps"]);
        let mut next_id = n0;
        for s in 0..steps {
            let st = s.to_string();
            match op_at(&rng, s) {
                0 => {
                    let m = 1 + rng.below(4, &["m", &st]);
                    let mut batch: BTreeMap<u64, String> = BTreeMap::new();
                    for j in 0..m {
                        let jt = format!("{s}.{j}");
                        let id = if live.is_empty() || rng.bernoulli(0.5, &["new", &jt]) {
                            next_id += 1;
                            next_id
                        } else {
                            *live.keys().nth(rng.below(live.len(), &["pick", &jt])).expect("live")
                        };
                        batch.insert(id, text(&rng, &jt, id));
                    }
                    let batch: Vec<(u64, String)> = batch.into_iter().collect();
                    live.extend(batch.iter().cloned());
                    index.upsert(&exec, &batch);
                }
                1 => {
                    let m = rng.below(live.len() + 1, &["rm", &st]);
                    let ids: Vec<u64> = live.keys().copied().take(m).collect();
                    for id in &ids {
                        live.remove(id);
                    }
                    prop_assert_eq!(index.remove(&ids), ids.len());
                }
                _ => index.compact(),
            }
        }

        prop_assert_eq!(index.len(), live.len());
        let mut cold = LexicalIndex::new(Bm25Params::default());
        let items: Vec<(u64, String)> = live.iter().map(|(k, v)| (*k, v.clone())).collect();
        cold.add_batch(&exec, &items);
        for probe in ["proton dose", "gene pathway kinase", "tumour margin imaging", "trial"] {
            prop_assert_eq!(index.search(probe, 10), cold.search(probe, 10), "probe {}", probe);
        }
    }

    /// The manifest codec: a decode → re-encode cycle is byte-identical
    /// (canonical layout), and the decoded manifest compares equal.
    #[test]
    fn manifest_roundtrip_is_byte_identical(seed in 0u64..64) {
        let rng = KeyedStochastic::new(seed ^ 0x3A_11F3);
        let mut manifest = IngestManifest::new();
        let sources = 1 + rng.below(3, &["sources"]);
        for s in 0..sources {
            let name = format!("source-{s}");
            let n = rng.below(40, &["n", &name]);
            let items: BTreeMap<u64, ContentHash> = (0..n)
                .map(|i| {
                    let id = rng.raw(&["id", &name, &i.to_string()]) % 10_000;
                    let body = rng.raw(&["content", &name, &id.to_string()]);
                    (id, ContentHash::of_bytes(&body.to_le_bytes()))
                })
                .collect();
            manifest.set_source(&name, items.into_iter().collect());
        }
        let bytes = manifest.to_bytes();
        let back = IngestManifest::from_bytes(&bytes).expect("manifest decodes");
        prop_assert_eq!(&back, &manifest);
        prop_assert_eq!(back.to_bytes(), bytes, "re-encode must be byte-identical");
    }
}

/// Removing every document leaves an empty, searchable store — and
/// compacting the all-tombstone store stays empty and searchable.
#[test]
fn remove_all_is_a_valid_state() {
    let exec = Executor::new(2);
    let rng = KeyedStochastic::new(77);
    let items: Vec<(u64, Vec<f32>)> = (0..16).map(|id| (id, vector(&rng, "ra", id))).collect();
    let ids: Vec<u64> = items.iter().map(|(id, _)| *id).collect();
    let q = vector(&rng, "q", 0);

    for spec in
        [IndexSpec::Flat, IndexSpec::Ivf(Default::default()), IndexSpec::Pq(Default::default())]
    {
        let mut store =
            build_store_from_vectors(&spec, DIM, Metric::Cosine, Precision::F32, &exec, &items);
        assert_eq!(store.remove(&ids), ids.len(), "{}", spec.label());
        assert_eq!(store.len(), 0);
        assert!(store.search(&q, 5).is_empty(), "{}", spec.label());
        store.compact(&exec);
        assert_eq!(store.len(), 0);
        assert_eq!(store.tombstones(), 0, "compaction drops every tombstone");
        assert!(store.search(&q, 5).is_empty());
    }

    let mut lex = LexicalIndex::new(Bm25Params::default());
    let docs: Vec<(u64, String)> = (0..16u64).map(|id| (id, text(&rng, "ra", id))).collect();
    lex.add_batch(&exec, &docs);
    assert_eq!(lex.remove(&ids), ids.len());
    assert_eq!(lex.len(), 0);
    assert!(lex.search("proton dose", 5).is_empty());
    lex.compact();
    assert_eq!(lex.len(), 0);
    assert!(lex.search("proton dose", 5).is_empty());
}

/// Upserting identical content over the same ids must not change what
/// search returns (the planner's no-op path never reaches the index, but
/// the index itself must also tolerate the identity edit).
#[test]
fn upsert_same_content_preserves_search() {
    let exec = Executor::new(2);
    let rng = KeyedStochastic::new(99);
    let items: Vec<(u64, Vec<f32>)> = (0..20).map(|id| (id, vector(&rng, "same", id))).collect();
    let q = vector(&rng, "q", 1);

    let mut store = build_store_from_vectors(
        &IndexSpec::Flat,
        DIM,
        Metric::Cosine,
        Precision::F32,
        &exec,
        &items,
    );
    let before = store.search(&q, 10);
    store.upsert(&exec, &items[3..9]);
    assert_eq!(store.search(&q, 10), before);
    store.compact(&exec);
    assert_eq!(store.search(&q, 10), before);

    let mut lex = LexicalIndex::new(Bm25Params::default());
    let docs: Vec<(u64, String)> = (0..20u64).map(|id| (id, text(&rng, "same", id))).collect();
    lex.add_batch(&exec, &docs);
    let before = lex.search("gene pathway", 10);
    lex.upsert(&exec, &docs[5..12]);
    assert_eq!(lex.search("gene pathway", 10), before);
    lex.compact();
    assert_eq!(lex.search("gene pathway", 10), before);
}
