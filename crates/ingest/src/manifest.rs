//! The persisted `IngestManifest`: per-source content addresses.
//!
//! One manifest rides alongside the serialised `IndexRegistry` (the
//! pipeline persists both from the same output), recording every source
//! database's `(document id, content hash)` table. A re-run hashes the
//! current corpus, builds both merkle trees, and [`IngestManifest::diff`]
//! emits the [`ChangeSet`] that plans the incremental work.
//!
//! Wire format (`INGM` magic, byte-identical round-trip): sources in name
//! order; per source the id-sorted document table with delta-zigzag
//! varint ids and raw 32-byte hashes.

use std::collections::BTreeMap;

use mcqa_util::codec::{put_u32, put_varint, unzigzag, zigzag, Reader};

use crate::hash::ContentHash;
use crate::merkle::{diff, ChangeSet, MerkleTree};

/// Per-source content-address tables, round-trippable to bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestManifest {
    /// Source name → id-sorted `(doc id, content hash)` table.
    sources: BTreeMap<String, Vec<(u64, ContentHash)>>,
}

impl IngestManifest {
    /// Magic tag opening the serialised format.
    pub const MAGIC: &'static [u8; 4] = b"INGM";

    /// An empty manifest (also what a cold run diffs against).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a source's document table, replacing any previous entry.
    /// Items are sorted by id; duplicate ids panic (one document, one
    /// address).
    pub fn set_source(&mut self, name: &str, mut items: Vec<(u64, ContentHash)>) {
        items.sort_unstable_by_key(|(id, _)| *id);
        for w in items.windows(2) {
            assert_ne!(w[0].0, w[1].0, "duplicate document id {} in source '{name}'", w[0].0);
        }
        self.sources.insert(name.to_string(), items);
    }

    /// A source's id-sorted document table, `None` when unrecorded.
    pub fn source(&self, name: &str) -> Option<&[(u64, ContentHash)]> {
        self.sources.get(name).map(Vec::as_slice)
    }

    /// Recorded source names, sorted.
    pub fn source_names(&self) -> Vec<&str> {
        self.sources.keys().map(String::as_str).collect()
    }

    /// Build the merkle tree for one source (empty tree when unrecorded —
    /// so diffing against a manifest that never saw the source classifies
    /// every document as added).
    pub fn tree(&self, name: &str) -> MerkleTree {
        MerkleTree::from_items(self.sources.get(name).cloned().unwrap_or_default())
    }

    /// The merkle root of one source ([`ContentHash::ZERO`] when
    /// unrecorded or empty).
    pub fn root(&self, name: &str) -> ContentHash {
        self.tree(name).root_hash()
    }

    /// Diff one source between two manifests: the `ChangeSet` going from
    /// `old` to `new`.
    pub fn diff(old: &Self, new: &Self, source: &str) -> ChangeSet {
        diff(&old.tree(source), &new.tree(source))
    }

    /// Serialise (deterministic: name order, id order — re-encoding a
    /// decoded manifest is byte-identical).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(Self::MAGIC);
        put_u32(&mut out, self.sources.len());
        for (name, items) in &self.sources {
            put_u32(&mut out, name.len());
            out.extend_from_slice(name.as_bytes());
            put_u32(&mut out, items.len());
            let mut prev = 0i64;
            for (id, hash) in items {
                put_varint(&mut out, zigzag((*id as i64).wrapping_sub(prev)));
                out.extend_from_slice(&hash.0);
                prev = *id as i64;
            }
        }
        out
    }

    /// Decode a [`IngestManifest::to_bytes`] artifact. `None` on any
    /// truncation, magic mismatch, unsorted/duplicate ids, or trailing
    /// garbage.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        r.expect_magic(Self::MAGIC)?;
        let n_sources = r.count(8)?;
        let mut sources = BTreeMap::new();
        let mut prev_name: Option<String> = None;
        for _ in 0..n_sources {
            let name_len = r.count(1)?;
            let name = std::str::from_utf8(r.take(name_len)?).ok()?.to_string();
            if prev_name.as_ref().is_some_and(|p| *p >= name) {
                return None; // name order is part of the canonical form
            }
            let n_docs = r.count(33)?;
            let mut items = Vec::with_capacity(n_docs);
            let mut prev = 0i64;
            for i in 0..n_docs {
                let id = prev.wrapping_add(unzigzag(r.varint()?));
                if i > 0 && id <= prev {
                    return None; // ids strictly increase
                }
                let hash = ContentHash(r.take(32)?.try_into().ok()?);
                items.push((id as u64, hash));
                prev = id;
            }
            prev_name = Some(name.clone());
            sources.insert(name, items);
        }
        r.exhausted().then_some(Self { sources })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IngestManifest {
        let mut m = IngestManifest::new();
        m.set_source(
            "chunks",
            vec![
                (5, ContentHash::of_bytes(b"five")),
                (1, ContentHash::of_bytes(b"one")),
                (9, ContentHash::of_bytes(b"nine")),
            ],
        );
        m.set_source("traces-detailed", vec![(2, ContentHash::of_bytes(b"t"))]);
        m.set_source("empty-source", Vec::new());
        m
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let m = sample();
        let bytes = m.to_bytes();
        let back = IngestManifest::from_bytes(&bytes).expect("decodes");
        assert_eq!(back, m);
        assert_eq!(back.to_bytes(), bytes, "re-encode is byte-identical");
        assert_eq!(back.source_names(), vec!["chunks", "empty-source", "traces-detailed"]);
        assert_eq!(back.source("chunks").unwrap()[0].0, 1, "ids come back sorted");
        // Corruption rejected at every truncation point.
        for cut in 0..bytes.len() {
            assert!(IngestManifest::from_bytes(&bytes[..cut]).is_none(), "cut {cut}");
        }
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(IngestManifest::from_bytes(&longer).is_none());
        // Empty manifest round-trips.
        let empty = IngestManifest::new();
        assert_eq!(IngestManifest::from_bytes(&empty.to_bytes()), Some(empty));
    }

    #[test]
    fn diff_between_manifests_plans_per_source() {
        let old = sample();
        let mut new = sample();
        new.set_source(
            "chunks",
            vec![
                (1, ContentHash::of_bytes(b"one")),     // unchanged
                (5, ContentHash::of_bytes(b"five-v2")), // modified
                (12, ContentHash::of_bytes(b"twelve")), // added
            ], // 9 removed
        );
        let cs = IngestManifest::diff(&old, &new, "chunks");
        assert_eq!(cs.added, vec![12]);
        assert_eq!(cs.modified, vec![5]);
        assert_eq!(cs.removed, vec![9]);
        assert!(IngestManifest::diff(&old, &new, "traces-detailed").is_empty());
        // A source the old manifest never recorded: everything is new.
        let cold = IngestManifest::diff(&IngestManifest::new(), &new, "chunks");
        assert_eq!(cold.added, vec![1, 5, 12]);
        assert_eq!(old.root("missing"), ContentHash::ZERO);
        assert_ne!(old.root("chunks"), new.root("chunks"));
    }

    #[test]
    #[should_panic(expected = "duplicate document id")]
    fn duplicate_ids_rejected() {
        let mut m = IngestManifest::new();
        m.set_source("x", vec![(1, ContentHash::ZERO), (1, ContentHash::of_bytes(b"a"))]);
    }
}
