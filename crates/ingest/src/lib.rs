//! Incremental ingest: content-addressed change detection for the
//! benchmarking pipeline.
//!
//! The batch pipeline rebuilds everything from scratch on every run. At
//! the scales the paper targets, most re-runs touch a sliver of the
//! corpus — a few revised documents, a handful of additions — and a full
//! rebuild wastes hours re-embedding and re-questioning unchanged text.
//! This crate supplies the bookkeeping that turns the batch pipeline into
//! a long-lived service:
//!
//! - [`ContentHash`] — a 256-bit stable content address per document.
//! - [`MerkleTree`] / [`diff`] — a radix merkle trie over each source's
//!   id space; diffing two trees emits the [`ChangeSet`]
//!   (added/modified/removed ids) in O(changed·log n).
//! - [`IngestManifest`] — the persisted per-source address tables,
//!   serialised alongside the index registry so the next run can diff
//!   against what the artifacts were actually built from.
//! - [`IngestCensus`] — the scan/skip/re-run counters an incremental
//!   pass reports (Figure-1 `ingest-*` stage rows and `[ingest]` lines).
//!
//! The index-side halves of the story — tombstones, `remove`/`upsert`,
//! and `compact` — live on the `VectorStore` trait and `LexicalIndex`;
//! the pipeline planner in `mcqa-core` joins the two.

pub mod census;
pub mod hash;
pub mod manifest;
pub mod merkle;

pub use census::IngestCensus;
pub use hash::ContentHash;
pub use manifest::IngestManifest;
pub use merkle::{diff, ChangeSet, MerkleTree};
