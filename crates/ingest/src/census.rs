//! The ingest census: what an incremental run scanned, skipped, and
//! re-ran.
//!
//! The pipeline threads one [`IngestCensus`] through an incremental run
//! and surfaces it twice: as Figure-1 `ingest-*` stage rows and as the
//! machine-greppable `[ingest] key=value` lines `repro ingest` (and the
//! smoke harness) assert on.

/// Counters for one incremental (or full — all-added) ingest pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestCensus {
    /// Documents in the live corpus at plan time.
    pub docs_scanned: usize,
    /// Newly added documents.
    pub docs_added: usize,
    /// Documents whose content hash changed.
    pub docs_modified: usize,
    /// Documents removed since the previous manifest.
    pub docs_removed: usize,
    /// Chunks across the live corpus after planning.
    pub chunks_total: usize,
    /// Chunks replayed from the previous run's snapshot (not re-run).
    pub chunks_reused: usize,
    /// Chunks that went through chunk→embed→question again.
    pub chunks_rerun: usize,
    /// Rows tombstoned across the dense stores by this pass.
    pub tombstones_dense: usize,
    /// Documents tombstoned across the lexical siblings by this pass.
    pub tombstones_lexical: usize,
    /// Stores compacted after exceeding the tombstone threshold.
    pub compactions: usize,
}

impl IngestCensus {
    /// Documents untouched by the change set.
    pub fn docs_skipped(&self) -> usize {
        self.docs_scanned - self.docs_added - self.docs_modified
    }

    /// Documents the change set touches (the removed ones are no longer
    /// scanned, so they count separately from `docs_scanned`).
    pub fn docs_changed(&self) -> usize {
        self.docs_added + self.docs_modified + self.docs_removed
    }

    /// The census as ordered `key=value` pairs — the single source for
    /// the `[ingest]` report lines, so tooling greps one stable spelling.
    pub fn lines(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("docs_scanned", self.docs_scanned),
            ("docs_added", self.docs_added),
            ("docs_modified", self.docs_modified),
            ("docs_removed", self.docs_removed),
            ("docs_skipped", self.docs_skipped()),
            ("chunks_total", self.chunks_total),
            ("chunks_reused", self.chunks_reused),
            ("chunks_rerun", self.chunks_rerun),
            ("tombstones_dense", self.tombstones_dense),
            ("tombstones_lexical", self.tombstones_lexical),
            ("compactions", self.compactions),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_counts_and_lines() {
        let census = IngestCensus {
            docs_scanned: 100,
            docs_added: 3,
            docs_modified: 2,
            docs_removed: 4,
            chunks_total: 800,
            chunks_reused: 760,
            chunks_rerun: 40,
            ..Default::default()
        };
        assert_eq!(census.docs_skipped(), 95);
        assert_eq!(census.docs_changed(), 9);
        let lines = census.lines();
        assert_eq!(lines[0], ("docs_scanned", 100));
        assert!(lines.iter().any(|&(k, v)| k == "docs_skipped" && v == 95));
        assert_eq!(lines.len(), 11);
    }
}
