//! A merkle tree over a document collection, diffable in O(changed·log n).
//!
//! The tree is a **radix trie over the u64 id space**: at depth `d` the
//! children split on bit `63 − d` of the document id, with an absent side
//! stored as `None`. Because the shape is a pure function of the id set —
//! never of insertion order or balancing history — two trees built over
//! collections that share a subset of ids align structurally, and
//! [`diff`] can skip any subtree whose hashes agree. The subtrees it
//! cannot skip contain only changed documents (plus, at a leaf/branch
//! mismatch, the one resident leaf), so the walk touches O(changed·log n)
//! nodes rather than O(n).

use crate::hash::ContentHash;

const LEAF_TAG: u8 = 1;
const BRANCH_TAG: u8 = 2;

#[derive(Debug)]
enum Node {
    Leaf { id: u64, content: ContentHash, hash: ContentHash },
    Branch { hash: ContentHash, left: Option<Box<Node>>, right: Option<Box<Node>> },
}

impl Node {
    fn hash(&self) -> &ContentHash {
        match self {
            Node::Leaf { hash, .. } | Node::Branch { hash, .. } => hash,
        }
    }
}

/// A merkle tree over `(document id, content hash)` pairs.
#[derive(Debug)]
pub struct MerkleTree {
    root: Option<Node>,
    len: usize,
}

/// The outcome of diffing an old tree against a new one: document ids
/// sorted ascending within each class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChangeSet {
    /// Ids present only in the new tree.
    pub added: Vec<u64>,
    /// Ids present in both trees with differing content hashes.
    pub modified: Vec<u64>,
    /// Ids present only in the old tree.
    pub removed: Vec<u64>,
}

impl ChangeSet {
    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.modified.is_empty() && self.removed.is_empty()
    }

    /// Total number of changed documents.
    pub fn len(&self) -> usize {
        self.added.len() + self.modified.len() + self.removed.len()
    }

    /// A `ChangeSet` that marks a whole collection as newly added — the
    /// cold-build degenerate case, which lets the full rebuild flow
    /// through the same incremental planner.
    pub fn all_added(ids: impl IntoIterator<Item = u64>) -> Self {
        let mut added: Vec<u64> = ids.into_iter().collect();
        added.sort_unstable();
        Self { added, modified: Vec::new(), removed: Vec::new() }
    }
}

fn leaf_hash(id: u64, content: &ContentHash) -> ContentHash {
    ContentHash::of_parts(LEAF_TAG, &[&id.to_le_bytes(), &content.0])
}

fn branch_hash(left: Option<&Node>, right: Option<&Node>) -> ContentHash {
    let absent = ContentHash::ZERO;
    let l = left.map_or(&absent, |n| n.hash());
    let r = right.map_or(&absent, |n| n.hash());
    ContentHash::of_parts(
        BRANCH_TAG,
        &[&[u8::from(left.is_some()), u8::from(right.is_some())], &l.0, &r.0],
    )
}

/// `items` must be sorted by id with distinct ids; splits on `bit`.
fn build(items: &[(u64, ContentHash)], bit: u32) -> Node {
    if items.len() == 1 {
        let (id, content) = items[0];
        return Node::Leaf { id, content, hash: leaf_hash(id, &content) };
    }
    debug_assert!(items.len() > 1);
    let split = items.partition_point(|(id, _)| id & (1u64 << bit) == 0);
    // Distinct ids differ in some bit ≤ the current one, so a multi-item
    // side always has a lower bit to split on; at bit 0 both sides hold
    // exactly one item and return before reading the (saturated) child
    // bit.
    let child_bit = bit.saturating_sub(1);
    let left = (split > 0).then(|| Box::new(build(&items[..split], child_bit)));
    let right = (split < items.len()).then(|| Box::new(build(&items[split..], child_bit)));
    let hash = branch_hash(left.as_deref(), right.as_deref());
    Node::Branch { hash, left, right }
}

impl MerkleTree {
    /// Build a tree over `(id, content hash)` pairs (any order; sorted
    /// internally). Panics on duplicate ids — one document, one address.
    pub fn from_items(mut items: Vec<(u64, ContentHash)>) -> Self {
        items.sort_unstable_by_key(|(id, _)| *id);
        for w in items.windows(2) {
            assert_ne!(w[0].0, w[1].0, "duplicate document id {} in merkle input", w[0].0);
        }
        let len = items.len();
        let root = (!items.is_empty()).then(|| build(&items, 63));
        Self { root, len }
    }

    /// Number of documents in the tree.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree covers no documents.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The root hash: one 256-bit summary of the whole collection.
    /// [`ContentHash::ZERO`] for an empty tree.
    pub fn root_hash(&self) -> ContentHash {
        self.root.as_ref().map_or(ContentHash::ZERO, |n| *n.hash())
    }
}

fn collect(node: Option<&Node>, out: &mut Vec<(u64, ContentHash)>) {
    match node {
        None => {}
        Some(Node::Leaf { id, content, .. }) => out.push((*id, *content)),
        Some(Node::Branch { left, right, .. }) => {
            collect(left.as_deref(), out);
            collect(right.as_deref(), out);
        }
    }
}

/// Merge two id-sorted item lists covering the same id range into the
/// change classes, skipping ids whose content agrees.
fn merge_diff(old: &[(u64, ContentHash)], new: &[(u64, ContentHash)], cs: &mut ChangeSet) {
    let (mut i, mut j) = (0, 0);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some(&(oid, _)), Some(&(nid, _))) if oid < nid => {
                cs.removed.push(oid);
                i += 1;
            }
            (Some(&(oid, _)), Some(&(nid, _))) if oid > nid => {
                cs.added.push(nid);
                j += 1;
            }
            (Some(&(oid, oh)), Some(&(_, nh))) => {
                if oh != nh {
                    cs.modified.push(oid);
                }
                i += 1;
                j += 1;
            }
            (Some(&(oid, _)), None) => {
                cs.removed.push(oid);
                i += 1;
            }
            (None, Some(&(nid, _))) => {
                cs.added.push(nid);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
}

fn diff_nodes(old: Option<&Node>, new: Option<&Node>, cs: &mut ChangeSet) {
    match (old, new) {
        (None, None) => {}
        // Equal hashes ⇒ identical subtrees: the skip that makes the walk
        // O(changed·log n).
        (Some(a), Some(b)) if a.hash() == b.hash() => {}
        (
            Some(Node::Branch { left: al, right: ar, .. }),
            Some(Node::Branch { left: bl, right: br, .. }),
        ) => {
            diff_nodes(al.as_deref(), bl.as_deref(), cs);
            diff_nodes(ar.as_deref(), br.as_deref(), cs);
        }
        // Leaf vs branch (or vs nothing): every resident id on either
        // side is part of the change region — collecting them is already
        // O(changed) work.
        _ => {
            let mut old_items = Vec::new();
            let mut new_items = Vec::new();
            collect(old, &mut old_items);
            collect(new, &mut new_items);
            merge_diff(&old_items, &new_items, cs);
        }
    }
}

/// Diff two trees: which document ids were added, modified, or removed
/// going from `old` to `new`. Ids come back sorted ascending per class
/// (the trees are walked left-to-right over the id-space radix).
pub fn diff(old: &MerkleTree, new: &MerkleTree) -> ChangeSet {
    let mut cs = ChangeSet::default();
    diff_nodes(old.root.as_ref(), new.root.as_ref(), &mut cs);
    cs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(ids: &[u64]) -> Vec<(u64, ContentHash)> {
        ids.iter().map(|&id| (id, ContentHash::of_bytes(&id.to_le_bytes()))).collect()
    }

    #[test]
    fn root_is_order_independent_and_content_sensitive() {
        let a = MerkleTree::from_items(items(&[1, 5, 9, 1000, u64::MAX]));
        let mut rev = items(&[1, 5, 9, 1000, u64::MAX]);
        rev.reverse();
        let b = MerkleTree::from_items(rev);
        assert_eq!(a.root_hash(), b.root_hash(), "shape is a function of the id set");

        let mut edited = items(&[1, 5, 9, 1000, u64::MAX]);
        edited[2].1 = ContentHash::of_bytes(b"changed");
        let c = MerkleTree::from_items(edited);
        assert_ne!(a.root_hash(), c.root_hash());
        assert_eq!(MerkleTree::from_items(Vec::new()).root_hash(), ContentHash::ZERO);
    }

    #[test]
    fn diff_classifies_add_modify_remove() {
        let old = MerkleTree::from_items(items(&[1, 2, 3, 4, 100]));
        let mut new_items = items(&[2, 3, 4, 100, 7]);
        new_items.iter_mut().find(|(id, _)| *id == 3).unwrap().1 = ContentHash::of_bytes(b"v2");
        let new = MerkleTree::from_items(new_items);
        let cs = diff(&old, &new);
        assert_eq!(cs.added, vec![7]);
        assert_eq!(cs.modified, vec![3]);
        assert_eq!(cs.removed, vec![1]);
        assert_eq!(cs.len(), 3);
        assert!(!cs.is_empty());
    }

    #[test]
    fn identical_trees_diff_empty() {
        let a = MerkleTree::from_items(items(&[0, 1, 2, 63, 64, 65, u64::MAX]));
        let b = MerkleTree::from_items(items(&[0, 1, 2, 63, 64, 65, u64::MAX]));
        assert!(diff(&a, &b).is_empty());
    }

    #[test]
    fn empty_transitions() {
        let empty = MerkleTree::from_items(Vec::new());
        let full = MerkleTree::from_items(items(&[10, 20, 30]));
        let up = diff(&empty, &full);
        assert_eq!(up.added, vec![10, 20, 30]);
        assert!(up.modified.is_empty() && up.removed.is_empty());
        let down = diff(&full, &empty);
        assert_eq!(down.removed, vec![10, 20, 30]);
        assert!(down.added.is_empty() && down.modified.is_empty());
        assert!(diff(&empty, &empty).is_empty());
    }

    #[test]
    fn all_added_matches_empty_to_n_diff() {
        let full = MerkleTree::from_items(items(&[9, 1, 5]));
        let empty = MerkleTree::from_items(Vec::new());
        assert_eq!(ChangeSet::all_added([9, 1, 5]), diff(&empty, &full));
    }

    #[test]
    #[should_panic(expected = "duplicate document id")]
    fn duplicate_ids_rejected() {
        let mut dup = items(&[1, 2]);
        dup.push((1, ContentHash::of_bytes(b"other")));
        MerkleTree::from_items(dup);
    }
}
