//! 256-bit content addresses built from the workspace's stable hashing.
//!
//! The real system would use BLAKE3; this reproduction is offline, so the
//! address is four independent [`StableHasher`] lanes (FNV-1a streams
//! domain-separated by seed, SplitMix64-finalised) over the same bytes —
//! 256 bits of stable, platform-independent state. Not cryptographic, but
//! collision probability is negligible at corpus scale and, critically
//! for the reproduction, **bit-stable forever**: the same document bytes
//! address to the same hash on every platform in every run.

use mcqa_util::StableHasher;

/// Domain separator so content hashes can never collide with the
/// workspace's other `StableHasher` uses.
const LANE_SEED: u64 = 0x00C0_A7E2_7AD1_2E57_u64;

/// A 256-bit content address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub [u8; 32]);

impl ContentHash {
    /// The address of zero bytes of content — also the root of an empty
    /// merkle tree.
    pub const ZERO: Self = Self([0u8; 32]);

    /// Hash raw content bytes.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        Self::of_parts(0, &[bytes])
    }

    /// Hash a tagged sequence of byte parts (length-prefixed per part, so
    /// part boundaries are unambiguous). The merkle layer uses distinct
    /// tags for leaves and branches; content addressing uses tag 0.
    pub fn of_parts(tag: u8, parts: &[&[u8]]) -> Self {
        let mut out = [0u8; 32];
        for lane in 0..4u64 {
            let mut h = StableHasher::with_seed(LANE_SEED ^ lane);
            h.write(&[tag]);
            h.write_u64(parts.len() as u64);
            for p in parts {
                h.write_u64(p.len() as u64);
                h.write(p);
            }
            out[lane as usize * 8..][..8].copy_from_slice(&h.finish().to_le_bytes());
        }
        Self(out)
    }

    /// Lowercase hex rendering (the form `[ingest]` roots print as).
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl std::fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ContentHash({}…)", &self.to_hex()[..16])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_content_sensitive() {
        let a = ContentHash::of_bytes(b"a document body");
        assert_eq!(a, ContentHash::of_bytes(b"a document body"));
        assert_ne!(a, ContentHash::of_bytes(b"a document bodY"));
        assert_ne!(a, ContentHash::of_bytes(b""));
        assert_ne!(ContentHash::of_bytes(b""), ContentHash::ZERO);
    }

    #[test]
    fn lanes_are_independent() {
        // All four 64-bit lanes must react to a content change — a stuck
        // lane would halve the effective width.
        let a = ContentHash::of_bytes(b"x").0;
        let b = ContentHash::of_bytes(b"y").0;
        for lane in 0..4 {
            assert_ne!(a[lane * 8..][..8], b[lane * 8..][..8], "lane {lane}");
        }
    }

    #[test]
    fn part_boundaries_disambiguate() {
        assert_ne!(
            ContentHash::of_parts(1, &[b"ab", b"c"]),
            ContentHash::of_parts(1, &[b"a", b"bc"])
        );
        assert_ne!(ContentHash::of_parts(1, &[b"ab"]), ContentHash::of_parts(2, &[b"ab"]));
    }

    #[test]
    fn hex_renders_all_32_bytes() {
        let h = ContentHash::of_bytes(b"hex me");
        assert_eq!(h.to_hex().len(), 64);
        assert!(h.to_hex().chars().all(|c| c.is_ascii_hexdigit()));
    }
}
