//! Deterministic word tokenisation.
//!
//! One tokeniser is used everywhere — chunk budgets, context-window
//! truncation, embedding features — so token counts are comparable across
//! the whole pipeline (the paper's stages share PubMedBERT's tokeniser in
//! the same way).

/// A token: lowercase alphanumeric word, keeping internal hyphens and
/// Greek-free alphanumerics (`"non-homologous"`, `"eqd2"`, `"t1/2"` splits
/// at the slash).
///
/// Tokenisation rules:
/// * split on any char that is not alphanumeric or `-`,
/// * drop pure `-` strings,
/// * lowercase everything.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() || c == '-' {
            for lc in c.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            if cur.chars().any(|c| c.is_alphanumeric()) {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    if !cur.is_empty() && cur.chars().any(|c| c.is_alphanumeric()) {
        out.push(cur);
    }
    out
}

/// The content tokens of `text`: [`tokenize`] minus stopwords.
///
/// This is the **one** corpus-side *and* query-side tokenisation every
/// retrieval channel uses — the vocabulary, the hash embeddings, the BM25
/// lexical index, and the simulated reranker all call through here, so a
/// query can never tokenise differently from the corpus it searches.
pub fn content_tokens(text: &str) -> Vec<String> {
    tokenize(text).into_iter().filter(|t| !crate::stopwords::is_stopword(t)).collect()
}

/// Number of tokens in `text` without materialising them.
pub fn token_count(text: &str) -> usize {
    let mut count = 0usize;
    let mut in_tok = false;
    let mut has_alnum = false;
    for c in text.chars() {
        if c.is_alphanumeric() || c == '-' {
            in_tok = true;
            has_alnum |= c.is_alphanumeric();
        } else {
            if in_tok && has_alnum {
                count += 1;
            }
            in_tok = false;
            has_alnum = false;
        }
    }
    if in_tok && has_alnum {
        count += 1;
    }
    count
}

/// Truncate `text` to at most `max_tokens` tokens, preserving the original
/// surface form (whitespace/punctuation) of the kept prefix.
///
/// Used for context-window truncation in the simulated models: a 2k-window
/// model sees only the first 2k tokens of its prompt, exactly like a real
/// model whose tokenizer hits its limit.
pub fn truncate_tokens(text: &str, max_tokens: usize) -> &str {
    if max_tokens == 0 {
        return "";
    }
    let mut count = 0usize;
    let mut in_tok = false;
    let mut has_alnum = false;
    for (i, c) in text.char_indices() {
        if c.is_alphanumeric() || c == '-' {
            if !in_tok {
                // A new token starts here; if we already have the budget
                // filled, cut before it.
                if count == max_tokens {
                    return &text[..i];
                }
            }
            in_tok = true;
            has_alnum |= c.is_alphanumeric();
        } else {
            if in_tok && has_alnum {
                count += 1;
            }
            in_tok = false;
            has_alnum = false;
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokenisation() {
        assert_eq!(
            tokenize("The HX-29 cell line was irradiated."),
            vec!["the", "hx-29", "cell", "line", "was", "irradiated"]
        );
    }

    #[test]
    fn punctuation_and_case() {
        assert_eq!(tokenize("EQD2 = BED/(1+2/3)!"), vec!["eqd2", "bed", "1", "2", "3"]);
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("—–…"), Vec::<String>::new());
    }

    #[test]
    fn hyphens_kept_inside_words() {
        assert_eq!(tokenize("non-homologous end-joining"), vec!["non-homologous", "end-joining"]);
        // Pure dashes are dropped.
        assert_eq!(tokenize("a - b"), vec!["a", "b"]);
    }

    #[test]
    fn content_tokens_drop_stopwords_only() {
        assert_eq!(
            content_tokens("The HX-29 cell line was irradiated."),
            vec!["hx-29", "cell", "line", "irradiated"]
        );
        assert_eq!(content_tokens("the of and"), Vec::<String>::new());
        assert_eq!(content_tokens(""), Vec::<String>::new());
    }

    #[test]
    fn corpus_and_query_tokenization_agree() {
        // The contract the lexical index relies on: filtering `tokenize`
        // by the stopword list is exactly `content_tokens`, for any text —
        // so a query-side caller and a corpus-side caller can never
        // diverge.
        let samples = [
            "Radiation induces apoptosis in tumour cells.",
            "EQD2 = BED/(1+2/3)!",
            "non-homologous end-joining — the of and",
            "α-kinase führt 5µm Überleben",
            "",
        ];
        for s in samples {
            let filtered: Vec<String> =
                tokenize(s).into_iter().filter(|t| !crate::stopwords::is_stopword(t)).collect();
            assert_eq!(content_tokens(s), filtered, "{s:?}");
        }
    }

    #[test]
    fn count_matches_tokenize() {
        let samples = [
            "",
            "one",
            "The p53-mediator axis, under hypoxic conditions, activates apoptosis.",
            "x - - y--z 42 Gy (3.5%)",
            "trailing word",
        ];
        for s in samples {
            assert_eq!(token_count(s), tokenize(s).len(), "{s:?}");
        }
    }

    #[test]
    fn truncate_basics() {
        let s = "alpha beta gamma delta";
        assert_eq!(truncate_tokens(s, 0), "");
        assert_eq!(truncate_tokens(s, 2).trim_end(), "alpha beta");
        assert_eq!(truncate_tokens(s, 4), s);
        assert_eq!(truncate_tokens(s, 100), s);
    }

    #[test]
    fn truncate_respects_token_count() {
        let s = "Clustered lesions, induced by carbon ions, resist repair (p < 0.05).";
        for k in 0..=token_count(s) {
            let t = truncate_tokens(s, k);
            assert!(token_count(t) <= k, "k={k} got {:?}", t);
            if k > 0 {
                assert_eq!(token_count(t), k);
            }
        }
    }

    #[test]
    fn truncate_preserves_prefix_surface() {
        let s = "A, B; C";
        let t = truncate_tokens(s, 2);
        assert!(s.starts_with(t));
        assert_eq!(tokenize(t), vec!["a", "b"]);
    }

    #[test]
    fn unicode_safety() {
        // Multi-byte chars must not split mid-boundary.
        let s = "α-kinase führt 5µm Überleben";
        let t = truncate_tokens(s, 2);
        assert!(s.starts_with(t));
        assert!(token_count(t) <= 2);
        let toks = tokenize("Überleben");
        assert_eq!(toks, vec!["überleben"]);
    }
}
