//! Corpus vocabulary with document frequencies and tf-idf weighting.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::token::content_tokens;

/// A term id in a [`Vocabulary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TermId(pub u32);

/// A corpus vocabulary: term ↔ id mapping plus document frequencies.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Vocabulary {
    terms: Vec<String>,
    ids: HashMap<String, TermId>,
    doc_freq: Vec<u32>,
    num_docs: u32,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one document's text, updating term ↔ id tables and document
    /// frequencies. Stopwords are excluded (the shared
    /// [`content_tokens`] tokenisation).
    pub fn add_document(&mut self, text: &str) {
        let mut distinct = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for tok in content_tokens(text) {
            let id = self.intern(&tok);
            if seen.insert(id) {
                distinct.push(id);
            }
        }
        self.record_document(&distinct);
    }

    /// Get-or-insert the id for `term` (must already be a lowercase
    /// content token) without touching document statistics. Ids are
    /// assigned in first-insertion order.
    pub fn intern(&mut self, term: &str) -> TermId {
        match self.ids.get(term) {
            Some(&id) => id,
            None => {
                let id = TermId(self.terms.len() as u32);
                self.terms.push(term.to_string());
                self.ids.insert(term.to_string(), id);
                self.doc_freq.push(0);
                id
            }
        }
    }

    /// Account one document containing exactly the given **distinct**
    /// interned terms: bumps `num_docs` and each term's document
    /// frequency. [`Vocabulary::add_document`] is `intern` + this; the
    /// lexical index calls them separately because it also needs the
    /// per-document term frequencies.
    pub fn record_document(&mut self, distinct: &[TermId]) {
        self.num_docs += 1;
        for id in distinct {
            self.doc_freq[id.0 as usize] += 1;
        }
    }

    /// Rebuild a vocabulary from its serialised parts: terms in id order,
    /// index-aligned document frequencies, and the document count.
    /// `None` when the two tables disagree in length (corrupted artifact).
    pub fn from_parts(terms: Vec<String>, doc_freq: Vec<u32>, num_docs: u32) -> Option<Self> {
        if terms.len() != doc_freq.len() {
            return None;
        }
        let ids = terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), TermId(i as u32)))
            .collect::<HashMap<_, _>>();
        if ids.len() != terms.len() {
            return None; // duplicate terms cannot round-trip the id map
        }
        Some(Self { terms, ids, doc_freq, num_docs })
    }

    /// Terms in id order (the serialisation order of
    /// [`Vocabulary::from_parts`]).
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().map(String::as_str)
    }

    /// Term id for `term` (must be lowercase).
    pub fn id(&self, term: &str) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Term string for an id.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.0 as usize).map(String::as_str)
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms have been added.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of documents added.
    pub fn num_docs(&self) -> u32 {
        self.num_docs
    }

    /// Document frequency of a term.
    pub fn doc_freq(&self, id: TermId) -> u32 {
        self.doc_freq.get(id.0 as usize).copied().unwrap_or(0)
    }

    /// Smoothed inverse document frequency: `ln((1+N)/(1+df)) + 1`.
    pub fn idf(&self, id: TermId) -> f64 {
        let df = self.doc_freq(id) as f64;
        ((1.0 + self.num_docs as f64) / (1.0 + df)).ln() + 1.0
    }

    /// tf-idf vector of `text` as a sparse `TermId → weight` map,
    /// L2-normalised. Unknown terms are ignored.
    pub fn tfidf(&self, text: &str) -> HashMap<TermId, f64> {
        let mut tf: HashMap<TermId, f64> = HashMap::new();
        for tok in content_tokens(text) {
            if let Some(id) = self.id(&tok) {
                *tf.entry(id).or_insert(0.0) += 1.0;
            }
        }
        let mut norm = 0.0;
        for (id, w) in tf.iter_mut() {
            *w *= self.idf(*id);
            norm += *w * *w;
        }
        if norm > 0.0 {
            let norm = norm.sqrt();
            for w in tf.values_mut() {
                *w /= norm;
            }
        }
        tf
    }

    /// The `k` highest-idf terms of `text` (most distinctive terms),
    /// descending, ties broken by term string for determinism.
    pub fn salient_terms<'v>(&'v self, text: &str, k: usize) -> Vec<&'v str> {
        let v = self.tfidf(text);
        let mut pairs: Vec<(TermId, f64)> = v.into_iter().collect();
        pairs.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| self.term(a.0).cmp(&self.term(b.0)))
        });
        pairs.into_iter().take(k).filter_map(|(id, _)| self.term(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.add_document("Radiation induces apoptosis in tumour cells.");
        v.add_document("Radiation damages DNA. Repair pathways respond.");
        v.add_document("Hypoxia causes radioresistance in tumour cores.");
        v
    }

    #[test]
    fn ids_roundtrip() {
        let v = sample_vocab();
        for term in ["radiation", "apoptosis", "hypoxia"] {
            let id = v.id(term).unwrap_or_else(|| panic!("{term} missing"));
            assert_eq!(v.term(id), Some(term));
        }
        assert!(v.id("the").is_none(), "stopwords excluded");
        assert!(v.id("nonexistent").is_none());
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let mut v = Vocabulary::new();
        v.add_document("dose dose dose");
        v.add_document("dose response");
        let id = v.id("dose").unwrap();
        assert_eq!(v.doc_freq(id), 2, "df counts documents");
        assert_eq!(v.num_docs(), 2);
    }

    #[test]
    fn idf_orders_rarity() {
        let v = sample_vocab();
        let common = v.id("radiation").unwrap(); // 2 docs
        let rare = v.id("hypoxia").unwrap(); // 1 doc
        assert!(v.idf(rare) > v.idf(common));
    }

    #[test]
    fn tfidf_normalised() {
        let v = sample_vocab();
        let vec = v.tfidf("radiation apoptosis repair");
        let norm: f64 = vec.values().map(|w| w * w).sum();
        assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
    }

    #[test]
    fn tfidf_of_unknown_text_is_empty() {
        let v = sample_vocab();
        assert!(v.tfidf("zzz qqq xxx").is_empty());
        assert!(v.tfidf("").is_empty());
    }

    #[test]
    fn salient_terms_prefer_rare() {
        let v = sample_vocab();
        let salient = v.salient_terms("radiation hypoxia tumour", 2);
        assert_eq!(salient.len(), 2);
        assert!(salient.contains(&"hypoxia"), "{salient:?}");
    }

    #[test]
    fn add_document_interns_exactly_the_content_tokens() {
        // Corpus-side ≡ query-side: the terms a document interns are
        // exactly its shared `content_tokens`, and a query re-tokenised
        // through the same helper resolves every one of them.
        let text = "Radiation-induced DNA damage and the repair pathways.";
        let mut v = Vocabulary::new();
        v.add_document(text);
        let toks = content_tokens(text);
        assert_eq!(v.len(), toks.iter().collect::<std::collections::HashSet<_>>().len());
        for tok in &toks {
            let id = v.id(tok).unwrap_or_else(|| panic!("{tok} missing"));
            assert_eq!(v.doc_freq(id), 1);
        }
        assert!(v.id("the").is_none(), "stopwords never interned");
    }

    #[test]
    fn from_parts_roundtrips() {
        let v = sample_vocab();
        let terms: Vec<String> = v.terms().map(str::to_string).collect();
        let dfs: Vec<u32> = (0..v.len()).map(|i| v.doc_freq(TermId(i as u32))).collect();
        let back = Vocabulary::from_parts(terms.clone(), dfs.clone(), v.num_docs()).unwrap();
        assert_eq!(back.len(), v.len());
        assert_eq!(back.num_docs(), v.num_docs());
        for (i, t) in terms.iter().enumerate() {
            assert_eq!(back.id(t), Some(TermId(i as u32)), "{t} keeps its id");
            assert_eq!(back.doc_freq(TermId(i as u32)), dfs[i]);
        }
        // Corrupted parts rejected.
        assert!(Vocabulary::from_parts(terms.clone(), dfs[..1].to_vec(), 3).is_none());
        let mut dup = terms;
        dup[0] = dup[1].clone();
        assert!(Vocabulary::from_parts(dup, dfs, 3).is_none());
    }

    #[test]
    fn serde_roundtrip() {
        let v = sample_vocab();
        let s = serde_json::to_string(&v).unwrap();
        let back: Vocabulary = serde_json::from_str(&s).unwrap();
        assert_eq!(back.len(), v.len());
        assert_eq!(back.num_docs(), v.num_docs());
        let id = v.id("radiation").unwrap();
        assert_eq!(back.doc_freq(id), v.doc_freq(id));
    }
}
