//! Abbreviation-aware sentence segmentation.
//!
//! Scientific prose is full of `"e.g."`, `"et al."`, `"Fig. 3"`, and decimal
//! numbers; naïvely splitting on `.` shreds it. The segmenter below splits
//! on `.`, `!`, `?` followed by whitespace and an uppercase/numeric start,
//! unless the period terminates a known abbreviation or an initial.

/// Abbreviations that never end a sentence.
const ABBREVIATIONS: &[&str] = &[
    "e.g", "i.e", "et al", "cf", "vs", "fig", "figs", "eq", "ref", "refs", "approx", "resp", "ca",
    "no", "nos", "vol", "dr", "prof", "inc", "etc",
];

/// Split `text` into sentences. Whitespace is trimmed from each sentence;
/// empty sentences are dropped.
pub fn split_sentences(text: &str) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '.' || c == '!' || c == '?' {
            // Look ahead: sentence boundary requires whitespace then an
            // uppercase letter, digit, or end of text.
            let mut j = i + 1;
            // Consume closing quotes/brackets directly after the mark.
            while j < bytes.len() && matches!(bytes[j] as char, ')' | ']' | '"' | '\'') {
                j += 1;
            }
            let ws_start = j;
            while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                j += 1;
            }
            let has_ws = j > ws_start;
            let next_ok = j >= bytes.len()
                || (has_ws && {
                    // Safe: j is on a char boundary because whitespace and
                    // ASCII consumed above are single-byte; for multi-byte
                    // chars we fall back to a char lookup.
                    match text[j..].chars().next() {
                        Some(nc) => nc.is_uppercase() || nc.is_numeric(),
                        None => true,
                    }
                });

            let is_abbrev = c == '.' && {
                let before = &text[start..i];
                let last_word = before
                    .rsplit(|ch: char| ch.is_whitespace() || ch == '(' || ch == ',')
                    .next()
                    .unwrap_or("");
                let lw = last_word.trim_end_matches('.').to_lowercase();
                // Single letters are initials ("J. Smith"); known
                // abbreviations and decimal contexts also block splits.
                lw.len() == 1 && lw.chars().all(|c| c.is_alphabetic())
                    || ABBREVIATIONS.iter().any(|a| lw == *a || lw.ends_with(&format!(".{a}")))
                    || (i + 1 < bytes.len() && (bytes[i + 1] as char).is_numeric())
            };

            if next_ok && !is_abbrev {
                let s = text[start..ws_start].trim();
                if !s.is_empty() {
                    out.push(s);
                }
                start = j;
                i = j;
                continue;
            }
        }
        i += 1;
    }
    let tail = text[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_split() {
        let s = "First sentence. Second one! Third? Done.";
        let parts = split_sentences(s);
        assert_eq!(parts, vec!["First sentence.", "Second one!", "Third?", "Done."]);
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s = "Repair is slow, e.g. in hypoxia. See Fig. 3 for details.";
        let parts = split_sentences(s);
        assert_eq!(parts.len(), 2, "{parts:?}");
        assert!(parts[0].ends_with("hypoxia."));
        assert!(parts[1].starts_with("See Fig. 3"));
    }

    #[test]
    fn decimals_do_not_split() {
        let s = "The dose was 2.5 Gy per fraction. Survival fell to 0.37 overall.";
        let parts = split_sentences(s);
        assert_eq!(parts.len(), 2, "{parts:?}");
    }

    #[test]
    fn initials_do_not_split() {
        let s = "As shown by J. Smith. The effect persisted.";
        let parts = split_sentences(s);
        assert_eq!(parts.len(), 2, "{parts:?}");
        assert_eq!(parts[0], "As shown by J. Smith.");
    }

    #[test]
    fn et_al_does_not_split() {
        let s = "Reported by Chen et al. Nevertheless results differ.";
        let parts = split_sentences(s);
        assert_eq!(parts.len(), 2, "{parts:?}");
        assert!(parts[0].ends_with("et al."));
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("   \n\t ").is_empty());
        assert_eq!(split_sentences("No terminal punctuation"), vec!["No terminal punctuation"]);
    }

    #[test]
    fn lowercase_continuation_does_not_split() {
        // "pH 7.4 buffer. we" — lowercase after period: treated as same
        // sentence (protects against mid-citation splits).
        let s = "Cells were kept in buffer. we then irradiated them.";
        let parts = split_sentences(s);
        assert_eq!(parts.len(), 1, "{parts:?}");
    }

    #[test]
    fn sentences_cover_text() {
        let s = "One. Two! Three? Four.";
        let parts = split_sentences(s);
        let glued: String = parts.join(" ");
        assert_eq!(glued, s);
    }

    #[test]
    fn unicode_content_survives() {
        let s = "The α/β ratio was 10 Gy. Überleben fell sharply.";
        let parts = split_sentences(s);
        assert_eq!(parts.len(), 2, "{parts:?}");
    }
}
