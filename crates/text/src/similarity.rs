//! Similarity measures over term vectors and dense embeddings.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// Cosine similarity of two sparse vectors. Returns 0 for empty inputs.
pub fn sparse_cosine<K: Eq + Hash>(a: &HashMap<K, f64>, b: &HashMap<K, f64>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    // Iterate the smaller map.
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let dot: f64 = small.iter().filter_map(|(k, v)| large.get(k).map(|w| v * w)).sum();
    let na: f64 = a.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Cosine similarity of two dense vectors; panics on length mismatch.
pub fn dense_cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Jaccard similarity of two sets.
pub fn jaccard<K: Eq + Hash>(a: &HashSet<K>, b: &HashSet<K>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Token-set Jaccard of two strings (lowercased word tokens).
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = crate::token::tokenize(a).into_iter().collect();
    let sb: HashSet<String> = crate::token::tokenize(b).into_iter().collect();
    jaccard(&sa, &sb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_cosine_identical() {
        let mut a = HashMap::new();
        a.insert("x", 1.0);
        a.insert("y", 2.0);
        assert!((sparse_cosine(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_cosine_orthogonal_and_empty() {
        let mut a = HashMap::new();
        a.insert("x", 1.0);
        let mut b = HashMap::new();
        b.insert("y", 1.0);
        assert_eq!(sparse_cosine(&a, &b), 0.0);
        let e: HashMap<&str, f64> = HashMap::new();
        assert_eq!(sparse_cosine(&a, &e), 0.0);
    }

    #[test]
    fn dense_cosine_basics() {
        assert!((dense_cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(dense_cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((dense_cosine(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-6);
        assert_eq!(dense_cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dense_cosine_mismatch_panics() {
        dense_cosine(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn jaccard_basics() {
        let a: HashSet<i32> = [1, 2, 3].into_iter().collect();
        let b: HashSet<i32> = [2, 3, 4].into_iter().collect();
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        let e: HashSet<i32> = HashSet::new();
        assert_eq!(jaccard(&e, &e), 1.0);
        assert_eq!(jaccard(&a, &e), 0.0);
    }

    #[test]
    fn token_jaccard_case_insensitive() {
        assert!((token_jaccard("DNA repair", "dna REPAIR") - 1.0).abs() < 1e-12);
        assert!(token_jaccard("alpha beta", "gamma delta") == 0.0);
        let mid = token_jaccard("dose rate effect", "dose rate constant");
        assert!(mid > 0.0 && mid < 1.0);
    }
}
