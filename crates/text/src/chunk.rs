//! Semantic chunking: embedding-drift boundary detection under a token
//! budget.
//!
//! This mirrors the paper's "semantic chunking with PubMedBERT": sentences
//! are grouped while consecutive sentence-window embeddings stay similar; a
//! boundary is emitted where similarity drops (topic shift) or where the
//! token budget would overflow. The encoder is pluggable via [`Encoder`].

use serde::{Deserialize, Serialize};

use crate::sentence::split_sentences;
use crate::similarity::dense_cosine;
use crate::token::token_count;

/// Pre-hashed accumulator postings for one sentence, composable into
/// multi-sentence window encodings without re-tokenising or re-hashing.
///
/// The contract (property-tested against `encode`): replaying every
/// sentence's postings in order into a zero accumulator — inserting the
/// encoder's [`Encoder::bridge_postings`] between each adjacent pair of
/// content-bearing sentences, right after the head postings of the later
/// sentence — then normalising, is **bit-identical** to encoding the
/// space-joined sentence text directly. Identity (not just approximation)
/// is what lets the chunker memoise per-sentence work without moving a
/// single chunk boundary.
#[derive(Debug, Clone)]
pub struct SentencePostings {
    /// `(accumulator index, signed weight)` pairs in emission order.
    pub postings: Vec<(u32, f32)>,
    /// How many leading postings belong to the first content token (its
    /// unigram + subword features). A cross-sentence bridge feature is
    /// replayed immediately after them — exactly where the joined encode
    /// would emit it.
    pub head_len: usize,
    /// The first non-stopword token, if any.
    pub first_content: Option<String>,
    /// The last non-stopword token, if any (carried across stopword-only
    /// sentences, as a running encode's bigram state would be).
    pub last_content: Option<String>,
}

/// Anything that can embed a piece of text into a dense vector.
///
/// `mcqa-embed`'s `BioEncoder` (the PubMedBERT stand-in) implements this;
/// tests use the lexical [`TfEncoder`].
///
/// Encoders may additionally implement the compositional API
/// ([`Encoder::sentence_postings`] / [`Encoder::bridge_postings`]): the
/// chunker then hashes each sentence once per document and replays cheap
/// `+=` postings per candidate boundary instead of re-encoding every
/// window. The default implementation opts out (`None`), which keeps the
/// trait trivially implementable.
pub trait Encoder {
    /// Embedding dimensionality.
    fn dim(&self) -> usize;
    /// Encode one text into a dense `dim()`-length vector.
    fn encode(&self, text: &str) -> Vec<f32>;
    /// Pre-hash one sentence for compositional window encoding, or `None`
    /// when the encoder does not support it.
    fn sentence_postings(&self, text: &str) -> Option<SentencePostings> {
        let _ = text;
        None
    }
    /// Postings for features spanning a sentence boundary (e.g. the word
    /// bigram joining `prev`'s last content token to `next`'s first).
    fn bridge_postings(&self, prev: &str, next: &str) -> Vec<(u32, f32)> {
        let _ = (prev, next);
        Vec::new()
    }
}

/// A trivial lexical encoder: hashed bag-of-words into a small dense
/// vector. Adequate for exercising the chunker without `mcqa-embed`.
#[derive(Debug, Clone)]
pub struct TfEncoder {
    dim: usize,
}

impl TfEncoder {
    /// Create with the given dimensionality (≥ 8 recommended).
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0);
        Self { dim }
    }
}

impl Encoder for TfEncoder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn encode(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        for tok in crate::token::content_tokens(text) {
            let h = mcqa_util::fnv1a(tok.as_bytes());
            v[(h % self.dim as u64) as usize] += 1.0;
        }
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }

    fn sentence_postings(&self, text: &str) -> Option<SentencePostings> {
        // Pure bag-of-words: no cross-sentence features, so no head/bridge
        // bookkeeping is needed — replaying all postings in order matches
        // the joined encode exactly.
        let postings = crate::token::content_tokens(text)
            .into_iter()
            .map(|tok| ((mcqa_util::fnv1a(tok.as_bytes()) % self.dim as u64) as u32, 1.0))
            .collect();
        Some(SentencePostings { postings, head_len: 0, first_content: None, last_content: None })
    }
}

/// Chunker configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkerConfig {
    /// Hard upper bound on tokens per chunk.
    pub max_tokens: usize,
    /// Minimum tokens before a drift boundary may fire (avoids confetti).
    pub min_tokens: usize,
    /// Cosine-similarity threshold: a boundary fires when the similarity of
    /// the running-chunk embedding and the next sentence drops below it.
    pub drift_threshold: f32,
    /// Number of trailing sentences in the comparison window.
    pub window_sentences: usize,
}

impl Default for ChunkerConfig {
    fn default() -> Self {
        Self { max_tokens: 256, min_tokens: 48, drift_threshold: 0.18, window_sentences: 3 }
    }
}

/// A chunk of a source document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chunk {
    /// Chunk text (sentences joined by a single space).
    pub text: String,
    /// Index of the first sentence (inclusive).
    pub first_sentence: usize,
    /// Index of the last sentence (inclusive).
    pub last_sentence: usize,
    /// Token count of `text`.
    pub tokens: usize,
}

/// Replay per-sentence postings into one window embedding, splicing the
/// encoder's bridge features at each join — the accumulation-order clone
/// of encoding the space-joined text directly.
fn replay_postings<'f, E: Encoder + ?Sized>(
    encoder: &E,
    feats: impl Iterator<Item = &'f SentencePostings>,
) -> Vec<f32> {
    let mut acc = vec![0.0f32; encoder.dim()];
    let mut prev: Option<&str> = None;
    for f in feats {
        let mut start = 0;
        if let (Some(p), Some(first)) = (prev, f.first_content.as_deref()) {
            for &(idx, w) in &f.postings[..f.head_len] {
                acc[idx as usize] += w;
            }
            for (idx, w) in encoder.bridge_postings(p, first) {
                acc[idx as usize] += w;
            }
            start = f.head_len;
        }
        for &(idx, w) in &f.postings[start..] {
            acc[idx as usize] += w;
        }
        if f.last_content.is_some() {
            prev = f.last_content.as_deref();
        }
    }
    let norm: f32 = acc.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in &mut acc {
            *x /= norm;
        }
    }
    acc
}

/// Encode the space-join of `sentences` through the compositional API, or
/// `None` when the encoder opts out. Exposed so encoders can pin the
/// bit-identity contract (`compose_encode(e, s) == e.encode(s.join(" "))`)
/// in their own test suites.
pub fn compose_encode<E: Encoder + ?Sized>(encoder: &E, sentences: &[&str]) -> Option<Vec<f32>> {
    let feats: Option<Vec<SentencePostings>> =
        sentences.iter().map(|s| encoder.sentence_postings(s)).collect();
    Some(replay_postings(encoder, feats?.iter()))
}

/// The semantic chunker.
pub struct Chunker<'e, E: Encoder> {
    config: ChunkerConfig,
    encoder: &'e E,
}

impl<'e, E: Encoder> Chunker<'e, E> {
    /// Create a chunker over `encoder` with `config`.
    pub fn new(encoder: &'e E, config: ChunkerConfig) -> Self {
        assert!(config.max_tokens >= config.min_tokens.max(1));
        assert!(config.window_sentences >= 1);
        Self { config, encoder }
    }

    /// Encode the space-join of `sentences[range]` by replaying memoised
    /// per-sentence postings (bit-identical to `encode` on the joined
    /// text), or `None` when the encoder opts out of composition.
    fn composed_window(
        &self,
        sentences: &[&str],
        memo: &mut [Option<SentencePostings>],
        range: std::ops::Range<usize>,
    ) -> Option<Vec<f32>> {
        for i in range.clone() {
            if memo[i].is_none() {
                memo[i] = Some(self.encoder.sentence_postings(sentences[i])?);
            }
        }
        Some(replay_postings(self.encoder, range.map(|i| memo[i].as_ref().expect("filled above"))))
    }

    /// Chunk a document.
    ///
    /// Invariants (property-tested):
    /// * every sentence lands in exactly one chunk, in order;
    /// * every chunk except possibly one holding a single oversized
    ///   sentence respects `max_tokens`;
    /// * chunk sentence ranges are contiguous and non-overlapping.
    ///
    /// Drift detection memoises per-sentence encoder work: with a
    /// compositional encoder each sentence is tokenised and hashed at most
    /// once per document, and every candidate-boundary window embedding is
    /// a cheap posting replay — the chunk boundaries are bit-identical to
    /// the re-encoding path either way.
    pub fn chunk(&self, text: &str) -> Vec<Chunk> {
        let sentences = split_sentences(text);
        if sentences.is_empty() {
            return Vec::new();
        }
        // Per-document memo; `compose` latches off permanently if the
        // encoder ever declines (an encoder either supports composition
        // for every sentence or for none).
        let mut memo: Vec<Option<SentencePostings>> = vec![None; sentences.len()];
        let mut compose = true;

        let mut chunks: Vec<Chunk> = Vec::new();
        let mut cur_sents: Vec<&str> = Vec::new();
        let mut cur_tokens = 0usize;
        let mut cur_first = 0usize;

        let flush = |chunks: &mut Vec<Chunk>,
                     cur: &mut Vec<&str>,
                     first: usize,
                     last: usize,
                     tokens: usize| {
            if cur.is_empty() {
                return;
            }
            chunks.push(Chunk {
                text: cur.join(" "),
                first_sentence: first,
                last_sentence: last,
                tokens,
            });
            cur.clear();
        };

        for (i, sent) in sentences.iter().enumerate() {
            let stoks = token_count(sent);
            if cur_sents.is_empty() {
                cur_first = i;
                cur_sents.push(sent);
                cur_tokens = stoks;
                continue;
            }

            // Budget boundary.
            if cur_tokens + stoks > self.config.max_tokens {
                flush(&mut chunks, &mut cur_sents, cur_first, i - 1, cur_tokens);
                cur_first = i;
                cur_sents.push(sent);
                cur_tokens = stoks;
                continue;
            }

            // Drift boundary: compare a trailing window of the running
            // chunk with a look-ahead window starting at the candidate
            // sentence. Windowing on both sides smooths out single-sentence
            // vocabulary noise, which a contextual encoder would absorb.
            if cur_tokens >= self.config.min_tokens {
                let w = self.config.window_sentences.min(cur_sents.len());
                let ahead_end = (i + self.config.window_sentences).min(sentences.len());
                let composed = if compose {
                    // Trailing window = the last `w` running-chunk
                    // sentences, i.e. global indices `i-w..i`.
                    match (
                        self.composed_window(&sentences, &mut memo, i - w..i),
                        self.composed_window(&sentences, &mut memo, i..ahead_end),
                    ) {
                        (Some(a), Some(b)) => Some((a, b)),
                        _ => {
                            compose = false;
                            None
                        }
                    }
                } else {
                    None
                };
                let (a, b) = composed.unwrap_or_else(|| {
                    let window_text = cur_sents[cur_sents.len() - w..].join(" ");
                    let ahead_text = sentences[i..ahead_end].join(" ");
                    (self.encoder.encode(&window_text), self.encoder.encode(&ahead_text))
                });
                if dense_cosine(&a, &b) < self.config.drift_threshold {
                    flush(&mut chunks, &mut cur_sents, cur_first, i - 1, cur_tokens);
                    cur_first = i;
                    cur_sents.push(sent);
                    cur_tokens = stoks;
                    continue;
                }
            }

            cur_sents.push(sent);
            cur_tokens += stoks;
        }
        let last = sentences.len() - 1;
        flush(&mut chunks, &mut cur_sents, cur_first, last, cur_tokens);
        chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn themed_text() -> String {
        // Two lexically cohesive themes: sentences within a theme share
        // vocabulary (as real topical prose does), themes share none.
        let theme_a = "Radiation induces breaks in tumour DNA strands. \
                       Radiation damage triggers repair of DNA breaks. \
                       Repair kinases mark radiation breaks in DNA. \
                       Tumour DNA repair follows radiation damage signalling. ";
        let theme_b = "Billing budgets changed hospital revenue processing. \
                       Hospital billing departments processed budget claims. \
                       Budget revenue reports shaped hospital billing. \
                       Billing committees reviewed hospital budget revenue. ";
        format!("{theme_a}{theme_b}")
    }

    #[test]
    fn empty_input() {
        let enc = TfEncoder::new(64);
        let chunker = Chunker::new(&enc, ChunkerConfig::default());
        assert!(chunker.chunk("").is_empty());
        assert!(chunker.chunk("   ").is_empty());
    }

    #[test]
    fn single_sentence() {
        let enc = TfEncoder::new(64);
        let chunker = Chunker::new(&enc, ChunkerConfig::default());
        let chunks = chunker.chunk("A single short sentence.");
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].first_sentence, 0);
        assert_eq!(chunks[0].last_sentence, 0);
    }

    #[test]
    fn budget_boundary_respected() {
        let enc = TfEncoder::new(64);
        let cfg = ChunkerConfig {
            max_tokens: 20,
            min_tokens: 5,
            drift_threshold: -1.0, // never fires: isolate the budget rule
            window_sentences: 2,
        };
        let chunker = Chunker::new(&enc, cfg.clone());
        let text = "One two three four five six seven. \
                    Eight nine ten eleven twelve thirteen. \
                    Fourteen fifteen sixteen seventeen eighteen nineteen twenty twentyone.";
        let chunks = chunker.chunk(text);
        assert!(chunks.len() >= 2, "{chunks:?}");
        for c in &chunks {
            assert!(c.tokens <= cfg.max_tokens, "{c:?}");
        }
    }

    #[test]
    fn oversized_single_sentence_kept_whole() {
        let enc = TfEncoder::new(64);
        let cfg = ChunkerConfig {
            max_tokens: 5,
            min_tokens: 1,
            drift_threshold: -1.0,
            window_sentences: 1,
        };
        let chunker = Chunker::new(&enc, cfg);
        let text = "this single sentence has considerably more than five tokens in it.";
        let chunks = chunker.chunk(text);
        assert_eq!(chunks.len(), 1, "oversized sentence forms its own chunk");
    }

    #[test]
    fn drift_boundary_fires_on_topic_shift() {
        let enc = TfEncoder::new(256);
        let cfg = ChunkerConfig {
            max_tokens: 1000, // budget never fires: isolate the drift rule
            min_tokens: 10,
            drift_threshold: 0.12,
            window_sentences: 3,
        };
        let chunker = Chunker::new(&enc, cfg);
        let chunks = chunker.chunk(&themed_text());
        assert!(chunks.len() >= 2, "topic shift should split: {chunks:?}");
        // The split should be near the theme boundary (sentence 4).
        assert!(chunks[0].last_sentence >= 2 && chunks[0].last_sentence <= 5, "{chunks:?}");
    }

    #[test]
    fn sentences_partitioned_exactly() {
        let enc = TfEncoder::new(64);
        let chunker = Chunker::new(
            &enc,
            ChunkerConfig {
                max_tokens: 30,
                min_tokens: 8,
                drift_threshold: 0.15,
                window_sentences: 2,
            },
        );
        let text = themed_text();
        let n_sentences = split_sentences(&text).len();
        let chunks = chunker.chunk(&text);
        let mut next = 0usize;
        for c in &chunks {
            assert_eq!(c.first_sentence, next, "contiguous coverage");
            assert!(c.last_sentence >= c.first_sentence);
            next = c.last_sentence + 1;
        }
        assert_eq!(next, n_sentences, "all sentences covered");
    }

    #[test]
    fn token_counts_accurate() {
        let enc = TfEncoder::new(64);
        let chunker = Chunker::new(&enc, ChunkerConfig::default());
        for c in chunker.chunk(&themed_text()) {
            assert_eq!(c.tokens, token_count(&c.text), "{c:?}");
        }
    }

    #[test]
    #[should_panic]
    fn invalid_config_rejected() {
        let enc = TfEncoder::new(8);
        let _ = Chunker::new(
            &enc,
            ChunkerConfig {
                max_tokens: 4,
                min_tokens: 10,
                drift_threshold: 0.2,
                window_sentences: 1,
            },
        );
    }

    /// An encoder that hides its compositional API, forcing the chunker
    /// onto the re-encoding fallback.
    struct Opaque<'a, E: Encoder>(&'a E);

    impl<E: Encoder> Encoder for Opaque<'_, E> {
        fn dim(&self) -> usize {
            self.0.dim()
        }
        fn encode(&self, text: &str) -> Vec<f32> {
            self.0.encode(text)
        }
    }

    #[test]
    fn compose_encode_matches_joined_encode() {
        let enc = TfEncoder::new(64);
        let sentences = [
            "Radiation induces breaks in tumour DNA strands.",
            "the of and", // stopword-only: contributes nothing, breaks no state
            "Repair kinases mark radiation breaks in DNA.",
            "",
            "Billing budgets changed hospital revenue processing.",
        ];
        for n in 0..=sentences.len() {
            let slice = &sentences[..n];
            let composed = compose_encode(&enc, slice).expect("TfEncoder composes");
            assert_eq!(composed, enc.encode(&slice.join(" ")), "first {n} sentences");
        }
    }

    #[test]
    fn memoised_chunking_is_bit_identical_to_reencoding() {
        let enc = TfEncoder::new(128);
        let opaque = Opaque(&enc);
        let cfg = ChunkerConfig {
            max_tokens: 30,
            min_tokens: 8,
            drift_threshold: 0.15,
            window_sentences: 2,
        };
        let text = themed_text();
        let fast = Chunker::new(&enc, cfg.clone()).chunk(&text);
        let reference = Chunker::new(&opaque, cfg).chunk(&text);
        assert_eq!(fast, reference, "memoisation must not move a single boundary");
        assert!(fast.len() >= 2, "fixture must actually exercise boundaries");
    }

    #[test]
    fn tf_encoder_unit_norm() {
        let enc = TfEncoder::new(32);
        let v = enc.encode("radiation dose fractionation response");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
        assert_eq!(enc.encode(""), vec![0.0; 32], "empty text is the zero vector");
    }
}
