//! Text processing substrate: tokenisation, sentence segmentation,
//! vocabulary statistics, similarity, and semantic chunking.
//!
//! The paper's pipeline performs "semantic chunking with PubMedBERT" to
//! address SLM context limits, yielding 173,318 chunks from 22,548
//! documents. This crate supplies the text machinery that stage needs:
//!
//! * [`token`] — a deterministic word tokeniser; all context-window
//!   accounting across the workspace is in these tokens.
//! * [`sentence`] — abbreviation-aware sentence segmentation.
//! * [`vocab`] — corpus vocabulary with document frequencies and tf-idf.
//! * [`similarity`] — cosine/Jaccard measures over term vectors.
//! * [`chunk`] — the semantic chunker: sentence-window embeddings are
//!   compared and a chunk boundary is placed where the embedding drifts
//!   (topic shift) or the token budget fills up. The embedding function is
//!   abstracted behind [`chunk::Encoder`] so the chunker works with the
//!   lexical [`chunk::TfEncoder`] (tests) or `mcqa-embed`'s `BioEncoder`
//!   (production, the PubMedBERT stand-in).

pub mod chunk;
pub mod sentence;
pub mod similarity;
pub mod stopwords;
pub mod token;
pub mod vocab;

pub use chunk::{
    compose_encode, Chunk, Chunker, ChunkerConfig, Encoder, SentencePostings, TfEncoder,
};
pub use sentence::split_sentences;
pub use token::{content_tokens, token_count, tokenize};
pub use vocab::{TermId, Vocabulary};
