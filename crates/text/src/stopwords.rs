//! A compact English stopword list tuned for scientific prose.

/// Alphabetically sorted stopwords (binary-searchable).
pub const STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "all", "also", "an", "and", "any", "are", "as", "at",
    "be", "because", "been", "before", "being", "below", "between", "both", "but", "by", "can",
    "could", "did", "do", "does", "doing", "down", "during", "each", "few", "for", "from",
    "further", "had", "has", "have", "having", "he", "her", "here", "hers", "him", "his", "how",
    "i", "if", "in", "into", "is", "it", "its", "itself", "just", "more", "most", "my", "no",
    "nor", "not", "now", "of", "off", "on", "once", "only", "or", "other", "our", "ours", "out",
    "over", "own", "same", "she", "should", "so", "some", "such", "than", "that", "the", "their",
    "theirs", "them", "then", "there", "these", "they", "this", "those", "through", "to", "too",
    "under", "until", "up", "very", "was", "we", "were", "what", "when", "where", "which", "while",
    "who", "whom", "why", "will", "with", "would", "you", "your", "yours",
];

/// True when `word` (already lowercase) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_unique() {
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "{:?} >= {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn membership() {
        assert!(is_stopword("the"));
        assert!(is_stopword("during"));
        assert!(!is_stopword("radiation"));
        assert!(!is_stopword("apoptosis"));
        assert!(!is_stopword(""));
    }
}
