//! Property tests for the resident panel cache's core contract:
//! **caching is invisible**. Panels observed through the cache-aware
//! accessor ([`EmbeddingMatrix::for_each_panel`]) are byte-for-byte the
//! panels the streaming path ([`EmbeddingMatrix::for_each_block`])
//! yields — across precisions, block sizes, and byte budgets (including
//! a zero budget that disables caching and a budget larger than the
//! whole decoded matrix), on cold and warm passes alike, with eviction
//! churning in between. Downstream, that makes cached scoring through
//! [`mcqa_index::Metric::score_block`] bit-identical to uncached
//! scoring, which is the identity flat/PQ search relies on.

use mcqa_embed::{EmbeddingMatrix, PanelBudget, PanelCache, Precision};
use mcqa_index::Metric;
use proptest::prelude::*;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn sample_rows(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|j| {
                    let s = splitmix(seed ^ ((i * dim + j) as u64) << 13);
                    (s % 2000) as f32 / 1000.0 - 1.0
                })
                .collect()
        })
        .collect()
}

/// Every panel `for_each_block` yields, as `(start_row, bits)`.
fn uncached_panels(m: &EmbeddingMatrix, block_rows: usize) -> Vec<(usize, Vec<u32>)> {
    let mut out = Vec::new();
    m.for_each_block(block_rows, |start, panel| {
        out.push((start, panel.iter().map(|v| v.to_bits()).collect()));
    });
    out
}

/// Every panel `for_each_panel` yields through `cache`, same encoding.
fn cached_panels(
    m: &EmbeddingMatrix,
    cache: &PanelCache,
    seg: u64,
    block_rows: usize,
) -> Vec<(usize, Vec<u32>)> {
    let mut out = Vec::new();
    m.for_each_panel(cache, seg, block_rows, |start, panel| {
        out.push((start, panel.iter().map(|v| v.to_bits()).collect()));
    });
    out
}

/// Score every row of the matrix against `query` panel by panel — the
/// shape of flat search's scan — through the given panel iterator.
fn scores_via<F: FnMut(&mut dyn FnMut(usize, &[f32]))>(
    m: &EmbeddingMatrix,
    metric: Metric,
    query: &[f32],
    mut iterate: F,
) -> Vec<u32> {
    let q_sq = mcqa_util::kernel::sq_norm(query);
    let norms = m.row_sq_norms();
    let mut scores = vec![0u32; m.len()];
    iterate(&mut |start, panel: &[f32]| {
        let rows = panel.len() / m.dim();
        let mut out = vec![0.0f32; rows];
        metric.score_block(query, q_sq, panel, &norms[start..start + rows], &mut out);
        for (j, s) in out.iter().enumerate() {
            scores[start + j] = s.to_bits();
        }
    });
    scores
}

proptest! {
    /// The headline identity: cached panels (and the scores computed from
    /// them) equal uncached panels bitwise at every budget — disabled (0),
    /// tiny (constant eviction), generous (≥ the full decoded matrix),
    /// and auto — across precisions, metrics, and block sizes, on the
    /// cold pass and on a warm pass replaying resident panels.
    #[test]
    fn cached_panels_and_scores_are_bit_identical_to_uncached(
        n in 1usize..48,
        dim_pick in 0usize..3,
        precision_pick in 0usize..2,
        metric_pick in 0usize..3,
        block_pick in 0usize..4,
        budget_pick in 0usize..4,
        seed in 0u64..1000,
    ) {
        let dim = [3usize, 8, 17][dim_pick];
        let precision = [Precision::F32, Precision::F16][precision_pick];
        let metric = [Metric::Cosine, Metric::Dot, Metric::L2][metric_pick];
        let block_rows = [1usize, 3, 8, 64][block_pick];
        let m = EmbeddingMatrix::from_rows(dim, precision, &sample_rows(n, dim, seed));
        let panel_bytes = block_rows.min(n) * dim * 4;
        let budget = [
            PanelBudget::Bytes(0),                     // disabled
            PanelBudget::Bytes(panel_bytes),           // one panel: constant eviction
            PanelBudget::Bytes(m.decoded_bytes() * 2), // everything fits
            PanelBudget::Auto,                         // resolves to decoded_bytes()
        ][budget_pick];
        let cache = PanelCache::new(budget);

        let expect = uncached_panels(&m, block_rows);
        let cold = cached_panels(&m, &cache, 7, block_rows);
        prop_assert_eq!(&cold, &expect, "cold pass");
        let warm = cached_panels(&m, &cache, 7, block_rows);
        prop_assert_eq!(&warm, &expect, "warm pass (replayed panels)");

        // The budget is a hard byte bound on resident panels, at every
        // point we can observe.
        if let PanelBudget::Bytes(b) = budget {
            prop_assert!(cache.resident_bytes() <= b,
                "resident {} > budget {}", cache.resident_bytes(), b);
        } else {
            prop_assert!(cache.resident_bytes() <= m.decoded_bytes());
        }

        // Scoring through the cache is bit-identical to scoring the
        // streamed panels — the identity index search depends on.
        let query: Vec<f32> = sample_rows(1, dim, seed ^ 0xabcd).remove(0);
        let direct = scores_via(&m, metric, &query, |f| m.for_each_block(block_rows, f));
        let via_cache =
            scores_via(&m, metric, &query, |f| m.for_each_panel(&cache, 7, block_rows, f));
        prop_assert_eq!(via_cache, direct, "scores {:?} {:?}", metric, precision);
    }

    /// Eviction under a budget smaller than the working set never changes
    /// what callers observe: interleaving two segments whose panels cannot
    /// both stay resident still yields exactly the uncached panels for
    /// each, and the budget holds throughout.
    #[test]
    fn eviction_churn_never_changes_observed_panels(
        n in 4usize..40,
        seed in 0u64..1000,
        rounds in 1usize..4,
    ) {
        let dim = 8;
        let block_rows = 4;
        let a = EmbeddingMatrix::from_rows(dim, Precision::F16, &sample_rows(n, dim, seed));
        let b = EmbeddingMatrix::from_rows(dim, Precision::F16, &sample_rows(n, dim, !seed));
        // Room for roughly two panels: every pass evicts most of the rest.
        let budget = 2 * block_rows * dim * 4;
        let cache = PanelCache::new(PanelBudget::Bytes(budget));
        let expect_a = uncached_panels(&a, block_rows);
        let expect_b = uncached_panels(&b, block_rows);
        for round in 0..rounds {
            prop_assert_eq!(&cached_panels(&a, &cache, 1, block_rows), &expect_a,
                "segment a, round {}", round);
            prop_assert_eq!(&cached_panels(&b, &cache, 2, block_rows), &expect_b,
                "segment b, round {}", round);
            prop_assert!(cache.resident_bytes() <= budget);
        }
        prop_assert!(cache.misses() > 0, "a tight budget must miss");
    }
}

/// A generous budget makes the warm pass pure hits: decode once, replay
/// forever — the mechanism behind the batch-of-1 latency win.
#[test]
fn warm_pass_is_all_hits_under_a_generous_budget() {
    let m = EmbeddingMatrix::from_rows(8, Precision::F16, &sample_rows(33, 8, 9));
    let cache = PanelCache::new(PanelBudget::Auto);
    let cold = cached_panels(&m, &cache, 0, 4);
    let misses_after_cold = cache.misses();
    assert_eq!(cache.hits(), 0);
    let warm = cached_panels(&m, &cache, 0, 4);
    assert_eq!(warm, cold);
    assert_eq!(cache.misses(), misses_after_cold, "warm pass decodes nothing");
    assert_eq!(cache.hits() as usize, cold.len(), "warm pass replays every panel");
}

/// F32 matrices are already resident: the accessor hands out direct
/// sub-slices and never touches the cache at any budget.
#[test]
fn f32_matrices_bypass_the_cache() {
    let m = EmbeddingMatrix::from_rows(8, Precision::F32, &sample_rows(20, 8, 3));
    let cache = PanelCache::new(PanelBudget::Auto);
    assert_eq!(cached_panels(&m, &cache, 0, 4), uncached_panels(&m, 4));
    assert_eq!(cache.hits() + cache.misses(), 0);
    assert_eq!(cache.resident_bytes(), 0);
}
