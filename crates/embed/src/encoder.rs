//! The `BioEncoder`: signed feature-hashing text encoder.

use mcqa_runtime::{run_stage_batched, Executor};
use mcqa_text::stopwords::is_stopword;
use mcqa_text::tokenize;
use mcqa_util::StableHasher;
use serde::{Deserialize, Serialize};

/// Encoder configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmbedConfig {
    /// Embedding dimensionality. The paper's PubMedBERT emits 768-d; the
    /// default here is 256 for speed, with the same retrieval behaviour
    /// (cosine geometry is preserved by the JL sketch).
    pub dim: usize,
    /// Seed for the hash family (a different seed is a different encoder).
    pub seed: u64,
    /// Include word bigram features (phrase sensitivity).
    pub word_bigrams: bool,
    /// Include character trigram features (robust to morphology/typos).
    pub char_trigrams: bool,
}

impl Default for EmbedConfig {
    fn default() -> Self {
        Self { dim: 256, seed: 42, word_bigrams: true, char_trigrams: true }
    }
}

/// Deterministic semantic text encoder (PubMedBERT stand-in).
#[derive(Debug, Clone)]
pub struct BioEncoder {
    config: EmbedConfig,
}

impl BioEncoder {
    /// Create an encoder.
    pub fn new(config: EmbedConfig) -> Self {
        assert!(config.dim >= 8, "dim must be at least 8");
        Self { config }
    }

    /// The encoder's configuration.
    pub fn config(&self) -> &EmbedConfig {
        &self.config
    }

    /// Add a signed hashed feature to the accumulator. Each feature is
    /// scattered to two positions with independent signs, halving sketch
    /// variance vs a single position.
    #[inline]
    fn add_feature(&self, acc: &mut [f32], feature: &str, weight: f32) {
        for r in 0..2u32 {
            let mut h = StableHasher::with_seed(self.config.seed);
            h.write_u32(r);
            h.write_str(feature);
            let bits = h.finish();
            let idx = (bits % self.config.dim as u64) as usize;
            let sign = if bits & (1 << 63) != 0 { -1.0 } else { 1.0 };
            acc[idx] += sign * weight;
        }
    }

    /// Encode one text into a unit-norm `dim`-vector (zero vector for
    /// featureless input).
    pub fn encode(&self, text: &str) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.config.dim];
        let tokens = tokenize(text);

        let mut prev_content: Option<&str> = None;
        for tok in &tokens {
            let stop = is_stopword(tok);
            if !stop {
                // Unigrams carry the bulk of the signal. Entity-like
                // symbols (digit-bearing gene/cell-line names) are the
                // discriminative keys of biomedical retrieval — a contextual
                // encoder like PubMedBERT weights them heavily, so do we.
                let entity_like = tok.chars().any(|c| c.is_ascii_digit());
                let w = if entity_like { 2.5 } else { 1.0 };
                self.add_feature(&mut acc, tok, w);
                if self.config.char_trigrams && tok.len() >= 5 {
                    let chars: Vec<char> = tok.chars().collect();
                    for w in chars.windows(3) {
                        let tri: String = w.iter().collect();
                        self.add_feature(&mut acc, &format!("#{tri}"), 0.25);
                    }
                }
                if self.config.word_bigrams {
                    if let Some(p) = prev_content {
                        self.add_feature(&mut acc, &format!("{p}_{tok}"), 0.5);
                    }
                }
                prev_content = Some(tok);
            }
        }

        let norm: f32 = acc.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut acc {
                *x /= norm;
            }
        }
        acc
    }

    /// Encode a batch on `exec`'s pool; rows are index-aligned with
    /// `texts`.
    pub fn encode_batch<S: AsRef<str> + Sync>(
        &self,
        exec: &Executor,
        texts: &[S],
    ) -> Vec<Vec<f32>> {
        let (results, _) =
            run_stage_batched(exec, "encode-batch", (0..texts.len()).collect(), 0, |i| {
                Ok::<_, String>(self.encode(texts[i].as_ref()))
            });
        results.into_iter().map(|r| r.expect("encoding cannot fail")).collect()
    }
}

impl mcqa_text::Encoder for BioEncoder {
    fn dim(&self) -> usize {
        self.config.dim
    }

    fn encode(&self, text: &str) -> Vec<f32> {
        BioEncoder::encode(self, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcqa_text::similarity::dense_cosine;

    fn enc() -> BioEncoder {
        BioEncoder::new(EmbedConfig::default())
    }

    #[test]
    fn deterministic() {
        let e = enc();
        let a = e.encode("radiation induces apoptosis in tumour cells");
        let b = e.encode("radiation induces apoptosis in tumour cells");
        assert_eq!(a, b);
    }

    #[test]
    fn unit_norm_or_zero() {
        let e = enc();
        let v = e.encode("fractionated dose schedules spare normal tissue");
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
        assert_eq!(e.encode(""), vec![0.0; 256]);
        assert_eq!(e.encode("the of and"), vec![0.0; 256], "stopwords only");
    }

    #[test]
    fn near_duplicates_are_close() {
        let e = enc();
        let a = e.encode("The TRK2 gene activates the repair pathway after irradiation.");
        let b = e.encode("After irradiation the TRK2 gene activates the repair pathway.");
        assert!(dense_cosine(&a, &b) > 0.8, "cos {}", dense_cosine(&a, &b));
    }

    #[test]
    fn related_texts_closer_than_unrelated() {
        let e = enc();
        let q = e.encode("Which pathway does TRK2 activate after radiation?");
        let rel = e.encode("TRK2 activates the VAXOR repair axis following radiation exposure.");
        let unrel = e.encode("Hospital billing codes changed in fiscal year 2019 budgets.");
        let cr = dense_cosine(&q, &rel);
        let cu = dense_cosine(&q, &unrel);
        assert!(cr > cu + 0.2, "related {cr} vs unrelated {cu}");
    }

    #[test]
    fn unrelated_near_orthogonal() {
        let e = enc();
        let a = e.encode("oxygen enhancement ratio under hypoxic conditions");
        let b = e.encode("quarterly insurance revenue administration staffing");
        assert!(dense_cosine(&a, &b).abs() < 0.25);
    }

    #[test]
    fn different_seeds_give_different_spaces() {
        let e1 = BioEncoder::new(EmbedConfig { seed: 1, ..Default::default() });
        let e2 = BioEncoder::new(EmbedConfig { seed: 2, ..Default::default() });
        let a = e1.encode("radiation biology");
        let b = e2.encode("radiation biology");
        assert!(dense_cosine(&a, &b) < 0.5, "independent hash families expected");
    }

    #[test]
    fn batch_matches_serial() {
        let e = enc();
        let texts = vec![
            "alpha beta gamma".to_string(),
            "".to_string(),
            "dose response modelling of late effects".to_string(),
        ];
        let batch = e.encode_batch(Executor::global(), &texts);
        for (t, row) in texts.iter().zip(&batch) {
            assert_eq!(row, &e.encode(t));
        }
    }

    #[test]
    fn dim_respected_and_validated() {
        let e = BioEncoder::new(EmbedConfig { dim: 64, ..Default::default() });
        assert_eq!(e.encode("text").len(), 64);
        assert_eq!(mcqa_text::Encoder::dim(&e), 64);
    }

    #[test]
    #[should_panic(expected = "dim must be at least 8")]
    fn tiny_dim_rejected() {
        BioEncoder::new(EmbedConfig { dim: 4, ..Default::default() });
    }

    #[test]
    fn bigram_feature_changes_encoding() {
        let with = BioEncoder::new(EmbedConfig { word_bigrams: true, ..Default::default() });
        let without = BioEncoder::new(EmbedConfig { word_bigrams: false, ..Default::default() });
        let t = "homologous recombination repairs breaks";
        assert_ne!(with.encode(t), without.encode(t));
    }

    #[test]
    fn works_as_chunker_encoder() {
        // Integration with the semantic chunker via the Encoder trait.
        let e = enc();
        let chunker = mcqa_text::Chunker::new(
            &e,
            mcqa_text::ChunkerConfig {
                max_tokens: 64,
                min_tokens: 8,
                drift_threshold: 0.1,
                window_sentences: 2,
            },
        );
        let chunks = chunker.chunk(
            "Radiation damages DNA in tumours. Radiation repair pathways respond to damage. \
             Billing budget revenue processed hospital claims. Hospital billing budget reports.",
        );
        assert!(!chunks.is_empty());
    }
}
