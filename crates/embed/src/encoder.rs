//! The `BioEncoder`: signed feature-hashing text encoder.

use mcqa_runtime::{run_stage_batched, Executor};
use mcqa_text::content_tokens;
use mcqa_util::StableHasher;
use serde::{Deserialize, Serialize};

/// Encoder configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmbedConfig {
    /// Embedding dimensionality. The paper's PubMedBERT emits 768-d; the
    /// default here is 256 for speed, with the same retrieval behaviour
    /// (cosine geometry is preserved by the JL sketch).
    pub dim: usize,
    /// Seed for the hash family (a different seed is a different encoder).
    pub seed: u64,
    /// Include word bigram features (phrase sensitivity).
    pub word_bigrams: bool,
    /// Include character trigram features (robust to morphology/typos).
    pub char_trigrams: bool,
}

impl Default for EmbedConfig {
    fn default() -> Self {
        Self { dim: 256, seed: 42, word_bigrams: true, char_trigrams: true }
    }
}

/// Deterministic semantic text encoder (PubMedBERT stand-in).
#[derive(Debug, Clone)]
pub struct BioEncoder {
    config: EmbedConfig,
}

impl BioEncoder {
    /// Create an encoder.
    pub fn new(config: EmbedConfig) -> Self {
        assert!(config.dim >= 8, "dim must be at least 8");
        Self { config }
    }

    /// The encoder's configuration.
    pub fn config(&self) -> &EmbedConfig {
        &self.config
    }

    /// The two `(index, signed weight)` postings of one hashed feature.
    /// Each feature is scattered to two positions with independent signs,
    /// halving sketch variance vs a single position.
    #[inline]
    fn feature_postings(&self, feature: &str, weight: f32) -> [(u32, f32); 2] {
        let mut out = [(0u32, 0.0f32); 2];
        for (r, slot) in out.iter_mut().enumerate() {
            let mut h = StableHasher::with_seed(self.config.seed);
            h.write_u32(r as u32);
            h.write_str(feature);
            let bits = h.finish();
            let idx = (bits % self.config.dim as u64) as u32;
            let sign = if bits & (1 << 63) != 0 { -1.0 } else { 1.0 };
            *slot = (idx, sign * weight);
        }
        out
    }

    /// Emit one content token's features (unigram, subword trigrams, and
    /// the bigram joining it to `prev`) in the exact order [`encode`]
    /// accumulates them. `emit` receives each posting.
    #[inline]
    fn token_features(&self, tok: &str, prev: Option<&str>, mut emit: impl FnMut(u32, f32)) {
        let entity_like = tok.chars().any(|c| c.is_ascii_digit());
        let w = if entity_like { 2.5 } else { 1.0 };
        for (idx, pw) in self.feature_postings(tok, w) {
            emit(idx, pw);
        }
        if self.config.char_trigrams && tok.len() >= 5 {
            let chars: Vec<char> = tok.chars().collect();
            for win in chars.windows(3) {
                let tri: String = win.iter().collect();
                for (idx, pw) in self.feature_postings(&format!("#{tri}"), 0.25) {
                    emit(idx, pw);
                }
            }
        }
        if self.config.word_bigrams {
            if let Some(p) = prev {
                for (idx, pw) in self.feature_postings(&format!("{p}_{tok}"), 0.5) {
                    emit(idx, pw);
                }
            }
        }
    }

    /// Encode one text into a unit-norm `dim`-vector (zero vector for
    /// featureless input).
    ///
    /// Unigrams carry the bulk of the signal. Entity-like symbols
    /// (digit-bearing gene/cell-line names) are the discriminative keys of
    /// biomedical retrieval — a contextual encoder like PubMedBERT weights
    /// them heavily, so do we (see `token_features`).
    pub fn encode(&self, text: &str) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.config.dim];
        let tokens = content_tokens(text);

        let mut prev_content: Option<&str> = None;
        for tok in &tokens {
            self.token_features(tok, prev_content, |idx, w| acc[idx as usize] += w);
            prev_content = Some(tok);
        }

        let norm: f32 = acc.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut acc {
                *x /= norm;
            }
        }
        acc
    }

    /// Encode a batch on `exec`'s pool; rows are index-aligned with
    /// `texts`.
    pub fn encode_batch<S: AsRef<str> + Sync>(
        &self,
        exec: &Executor,
        texts: &[S],
    ) -> Vec<Vec<f32>> {
        let (results, _) =
            run_stage_batched(exec, "encode-batch", (0..texts.len()).collect(), 0, |i| {
                Ok::<_, String>(self.encode(texts[i].as_ref()))
            });
        results.into_iter().map(|r| r.expect("encoding cannot fail")).collect()
    }
}

impl mcqa_text::Encoder for BioEncoder {
    fn dim(&self) -> usize {
        self.config.dim
    }

    fn encode(&self, text: &str) -> Vec<f32> {
        BioEncoder::encode(self, text)
    }

    /// Pre-hash one sentence for the chunker's compositional window
    /// encoding. Postings are recorded in the exact order
    /// [`BioEncoder::encode`] would accumulate them, so replaying them —
    /// with [`mcqa_text::Encoder::bridge_postings`] spliced in after the
    /// first content token's head at each sentence join — reproduces the
    /// joined encode bit for bit.
    fn sentence_postings(&self, text: &str) -> Option<mcqa_text::SentencePostings> {
        let tokens = content_tokens(text);
        let mut postings: Vec<(u32, f32)> = Vec::new();
        let mut head_len = 0usize;
        let mut first_content: Option<&str> = None;
        let mut prev_content: Option<&str> = None;
        for tok in &tokens {
            self.token_features(tok, prev_content, |idx, w| postings.push((idx, w)));
            if first_content.is_none() {
                first_content = Some(tok);
                // The first content token has no in-sentence bigram: its
                // postings are exactly the head a cross-sentence bridge
                // splices after.
                head_len = postings.len();
            }
            prev_content = Some(tok);
        }
        Some(mcqa_text::SentencePostings {
            postings,
            head_len,
            first_content: first_content.map(str::to_string),
            last_content: prev_content.map(str::to_string),
        })
    }

    /// The word bigram joining two sentences' adjacent content tokens —
    /// the only feature of [`BioEncoder::encode`] that spans a sentence
    /// boundary.
    fn bridge_postings(&self, prev: &str, next: &str) -> Vec<(u32, f32)> {
        if !self.config.word_bigrams {
            return Vec::new();
        }
        self.feature_postings(&format!("{prev}_{next}"), 0.5).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcqa_text::similarity::dense_cosine;

    fn enc() -> BioEncoder {
        BioEncoder::new(EmbedConfig::default())
    }

    #[test]
    fn deterministic() {
        let e = enc();
        let a = e.encode("radiation induces apoptosis in tumour cells");
        let b = e.encode("radiation induces apoptosis in tumour cells");
        assert_eq!(a, b);
    }

    #[test]
    fn unit_norm_or_zero() {
        let e = enc();
        let v = e.encode("fractionated dose schedules spare normal tissue");
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
        assert_eq!(e.encode(""), vec![0.0; 256]);
        assert_eq!(e.encode("the of and"), vec![0.0; 256], "stopwords only");
    }

    #[test]
    fn near_duplicates_are_close() {
        let e = enc();
        let a = e.encode("The TRK2 gene activates the repair pathway after irradiation.");
        let b = e.encode("After irradiation the TRK2 gene activates the repair pathway.");
        assert!(dense_cosine(&a, &b) > 0.8, "cos {}", dense_cosine(&a, &b));
    }

    #[test]
    fn related_texts_closer_than_unrelated() {
        let e = enc();
        let q = e.encode("Which pathway does TRK2 activate after radiation?");
        let rel = e.encode("TRK2 activates the VAXOR repair axis following radiation exposure.");
        let unrel = e.encode("Hospital billing codes changed in fiscal year 2019 budgets.");
        let cr = dense_cosine(&q, &rel);
        let cu = dense_cosine(&q, &unrel);
        assert!(cr > cu + 0.2, "related {cr} vs unrelated {cu}");
    }

    #[test]
    fn unrelated_near_orthogonal() {
        let e = enc();
        let a = e.encode("oxygen enhancement ratio under hypoxic conditions");
        let b = e.encode("quarterly insurance revenue administration staffing");
        assert!(dense_cosine(&a, &b).abs() < 0.25);
    }

    #[test]
    fn different_seeds_give_different_spaces() {
        let e1 = BioEncoder::new(EmbedConfig { seed: 1, ..Default::default() });
        let e2 = BioEncoder::new(EmbedConfig { seed: 2, ..Default::default() });
        let a = e1.encode("radiation biology");
        let b = e2.encode("radiation biology");
        assert!(dense_cosine(&a, &b) < 0.5, "independent hash families expected");
    }

    #[test]
    fn batch_matches_serial() {
        let e = enc();
        let texts = vec![
            "alpha beta gamma".to_string(),
            "".to_string(),
            "dose response modelling of late effects".to_string(),
        ];
        let batch = e.encode_batch(Executor::global(), &texts);
        for (t, row) in texts.iter().zip(&batch) {
            assert_eq!(row, &e.encode(t));
        }
    }

    #[test]
    fn dim_respected_and_validated() {
        let e = BioEncoder::new(EmbedConfig { dim: 64, ..Default::default() });
        assert_eq!(e.encode("text").len(), 64);
        assert_eq!(mcqa_text::Encoder::dim(&e), 64);
    }

    #[test]
    #[should_panic(expected = "dim must be at least 8")]
    fn tiny_dim_rejected() {
        BioEncoder::new(EmbedConfig { dim: 4, ..Default::default() });
    }

    #[test]
    fn bigram_feature_changes_encoding() {
        let with = BioEncoder::new(EmbedConfig { word_bigrams: true, ..Default::default() });
        let without = BioEncoder::new(EmbedConfig { word_bigrams: false, ..Default::default() });
        let t = "homologous recombination repairs breaks";
        assert_ne!(with.encode(t), without.encode(t));
    }

    /// The BioEncoder minus its compositional API: forces the chunker onto
    /// the re-encoding fallback for equivalence testing.
    struct Opaque<'a>(&'a BioEncoder);

    impl mcqa_text::Encoder for Opaque<'_> {
        fn dim(&self) -> usize {
            mcqa_text::Encoder::dim(self.0)
        }
        fn encode(&self, text: &str) -> Vec<f32> {
            self.0.encode(text)
        }
    }

    fn awkward_sentences() -> Vec<&'static str> {
        vec![
            "Radiation induces breaks in tumour DNA strands.",
            "The HX-29 cell line resists 2.0 Gy fractions.", // entity weights + digits
            "the of and",                                    // stopword-only: bigram state carries
            "",                                              // empty sentence
            "Clustered lesions resist non-homologous end-joining repair.", // trigram-length tokens
            "Budget revenue reports shaped hospital billing.",
        ]
    }

    #[test]
    fn compose_encode_matches_joined_encode_bitwise() {
        // The memoisation contract: composition must be *identity*, not
        // approximation — across entity weighting, char trigrams, word
        // bigrams (including the cross-sentence bridge), and stopword-only
        // sentences that carry bigram state through.
        for cfg in [
            EmbedConfig::default(),
            EmbedConfig { word_bigrams: false, ..Default::default() },
            EmbedConfig { char_trigrams: false, ..Default::default() },
            EmbedConfig { seed: 7, dim: 64, ..Default::default() },
        ] {
            let e = BioEncoder::new(cfg);
            let sentences = awkward_sentences();
            for start in 0..sentences.len() {
                for end in start..=sentences.len() {
                    let slice = &sentences[start..end];
                    let composed =
                        mcqa_text::compose_encode(&e, slice).expect("BioEncoder composes");
                    assert_eq!(
                        composed,
                        e.encode(&slice.join(" ")),
                        "window {start}..{end} must be bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn memoised_chunking_matches_reencoding_chunking() {
        let e = enc();
        let opaque = Opaque(&e);
        let cfg = mcqa_text::ChunkerConfig {
            max_tokens: 48,
            min_tokens: 8,
            drift_threshold: 0.15,
            window_sentences: 3,
        };
        let text = awkward_sentences().join(" ")
            + " Radiation damage triggers repair of DNA breaks. \
               Hospital billing departments processed budget claims. \
               Billing committees reviewed hospital budget revenue.";
        let fast = mcqa_text::Chunker::new(&e, cfg.clone()).chunk(&text);
        let reference = mcqa_text::Chunker::new(&opaque, cfg).chunk(&text);
        assert_eq!(fast, reference, "memoisation must not move a single chunk boundary");
        assert!(fast.len() >= 2, "fixture must exercise boundaries");
    }

    #[test]
    fn works_as_chunker_encoder() {
        // Integration with the semantic chunker via the Encoder trait.
        let e = enc();
        let chunker = mcqa_text::Chunker::new(
            &e,
            mcqa_text::ChunkerConfig {
                max_tokens: 64,
                min_tokens: 8,
                drift_threshold: 0.1,
                window_sentences: 2,
            },
        );
        let chunks = chunker.chunk(
            "Radiation damages DNA in tumours. Radiation repair pathways respond to damage. \
             Billing budget revenue processed hospital claims. Hospital billing budget reports.",
        );
        assert!(!chunks.is_empty());
    }
}
