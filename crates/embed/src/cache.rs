//! A concurrent encode cache.
//!
//! Question texts are embedded repeatedly (once per retrieval condition per
//! model); the cache makes those lookups free and is safe to share across
//! pool workers.

use parking_lot::RwLock;
use std::collections::HashMap;

use crate::encoder::BioEncoder;

/// A concurrent `text → embedding` cache keyed by a stable 64-bit hash of
/// the text (collisions are harmless for retrieval: the encoder is
/// deterministic, so a collision would only ever deduplicate work for
/// different texts with the same hash — probability ~2⁻⁶⁴ per pair).
pub struct EmbeddingCache<'e> {
    encoder: &'e BioEncoder,
    map: RwLock<HashMap<u64, Vec<f32>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl<'e> EmbeddingCache<'e> {
    /// Create a cache over `encoder`.
    pub fn new(encoder: &'e BioEncoder) -> Self {
        Self {
            encoder,
            map: RwLock::new(HashMap::new()),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Encode through the cache.
    pub fn encode(&self, text: &str) -> Vec<f32> {
        use std::sync::atomic::Ordering::Relaxed;
        let key = mcqa_util::fnv1a(text.as_bytes());
        if let Some(v) = self.map.read().get(&key) {
            self.hits.fetch_add(1, Relaxed);
            return v.clone();
        }
        let v = self.encoder.encode(text);
        self.misses.fetch_add(1, Relaxed);
        self.map.write().insert(key, v.clone());
        v
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering::Relaxed;
        (self.hits.load(Relaxed), self.misses.load(Relaxed))
    }

    /// Number of cached embeddings.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EmbedConfig;

    #[test]
    fn caches_and_counts() {
        let enc = BioEncoder::new(EmbedConfig::default());
        let cache = EmbeddingCache::new(&enc);
        let a = cache.encode("dose rate effects");
        let b = cache.encode("dose rate effects");
        assert_eq!(a, b);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
        let _ = cache.encode("another text");
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn cached_value_matches_direct() {
        let enc = BioEncoder::new(EmbedConfig::default());
        let cache = EmbeddingCache::new(&enc);
        let via_cache = cache.encode("fractionation schedule");
        assert_eq!(via_cache, enc.encode("fractionation schedule"));
    }

    #[test]
    fn concurrent_use() {
        let enc = BioEncoder::new(EmbedConfig::default());
        let cache = EmbeddingCache::new(&enc);
        std::thread::scope(|s| {
            for _t in 0..4 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..50 {
                        let text = format!("text {}", i % 10); // keys shared across threads
                        let _ = cache.encode(&text);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 10);
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 200);
        assert!(misses >= 10);
    }
}
