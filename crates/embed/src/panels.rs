//! Resident decoded-panel cache: the batch-of-1 latency fix.
//!
//! F16 storage halves the wire/RAM footprint but taxes every search with a
//! full-matrix decode. Micro-batching amortises that across concurrent
//! queries; a *lone* query cannot be batched, so it pays the whole decode —
//! the latency floor ROADMAP calls "the part batching can't buy".
//!
//! [`PanelCache`] removes the tax by keeping decoded F32 panels resident
//! under a bounded byte budget. Keys are `(segment, start_row, floats)` so
//! one cache can serve several backing stores (the PQ index keys by
//! inverted-list id) and coexisting block sizes can never alias. Panels are
//! held as `Arc<Vec<f32>>` and cloned out of the lock, so eviction can
//! never invalidate a panel a concurrent search is still scoring.
//!
//! Bit-identity is structural, not asserted: a miss runs the *caller's*
//! decode closure — the same decode loop the uncached path uses — and a hit
//! replays those exact bytes. `tests/panel_cache.rs` property-tests the
//! equivalence across precisions, budgets, and eviction schedules anyway.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Byte-budget policy for a [`PanelCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PanelBudget {
    /// Size the budget off the store itself: room for the full decoded
    /// matrix, i.e. decode-once-pin for hot stores (the default).
    #[default]
    Auto,
    /// Explicit ceiling in bytes. `Bytes(0)` disables caching entirely —
    /// every panel decodes into caller scratch, exactly the legacy path.
    Bytes(usize),
}

impl PanelBudget {
    /// Resolve the policy against a store's full decoded size.
    fn effective(self, auto_cap_bytes: usize) -> usize {
        match self {
            PanelBudget::Auto => auto_cap_bytes,
            PanelBudget::Bytes(b) => b,
        }
    }
}

#[derive(Debug)]
struct Entry {
    panel: Arc<Vec<f32>>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<(u64, usize, usize), Entry>,
    /// Sum of `panel.len() * 4` over the map — the budget denominator.
    bytes: usize,
    /// Monotone LRU clock (bumped on every touch).
    tick: u64,
}

/// A bounded cache of decoded F32 panels with LRU eviction.
///
/// Interior-mutable: searches run behind `&self`, so the map sits in a
/// [`parking_lot::Mutex`] held only for lookups/inserts — never across a
/// decode or a score. Hit/miss counters are atomics for the same reason.
#[derive(Debug)]
pub struct PanelCache {
    budget: PanelBudget,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PanelCache {
    fn default() -> Self {
        Self::new(PanelBudget::Auto)
    }
}

/// A clone starts empty: cloned indexes can mutate independently, so they
/// must not share (or copy) resident panels — only the budget policy.
impl Clone for PanelCache {
    fn clone(&self) -> Self {
        Self::new(self.budget)
    }
}

impl PanelCache {
    /// Create an empty cache under `budget`.
    pub fn new(budget: PanelBudget) -> Self {
        Self {
            budget,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured budget policy.
    pub fn budget(&self) -> PanelBudget {
        self.budget
    }

    /// Replace the budget policy. Drops every resident panel: a shrink must
    /// re-fit and a grow is rare enough that starting cold keeps this O(1).
    pub fn set_budget(&mut self, budget: PanelBudget) {
        self.budget = budget;
        self.invalidate();
    }

    /// Drop every resident panel (the backing matrix changed). Counters
    /// survive — they describe the cache's lifetime, not its contents.
    pub fn invalidate(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.bytes = 0;
    }

    /// Bytes of decoded panels currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Number of panels currently resident.
    pub fn resident_panels(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Lifetime cache hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime cache misses (including uncacheable oversized panels).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fetch-or-decode the panel of `floats` f32s at `(seg, start)` and run
    /// `use_panel` over it.
    ///
    /// On a hit the resident panel is cloned out of the lock (an `Arc`
    /// bump) and replayed. On a miss `decode` fills a fresh buffer which is
    /// then made resident, evicting least-recently-used panels until the
    /// effective budget holds. When caching is off — budget 0, or a panel
    /// alone exceeding the budget — `decode` fills `scratch` instead and
    /// nothing is retained, which is exactly the legacy uncached path.
    ///
    /// `auto_cap_bytes` is the store's full decoded size, the budget
    /// [`PanelBudget::Auto`] resolves to.
    #[allow(clippy::too_many_arguments)]
    pub fn with_panel<R>(
        &self,
        seg: u64,
        start: usize,
        floats: usize,
        auto_cap_bytes: usize,
        scratch: &mut Vec<f32>,
        decode: impl FnOnce(&mut [f32]),
        use_panel: impl FnOnce(&[f32]) -> R,
    ) -> R {
        let budget = self.budget.effective(auto_cap_bytes);
        let panel_bytes = floats * 4;
        if budget == 0 || panel_bytes > budget {
            // Uncacheable: decode into caller scratch, retain nothing.
            self.misses.fetch_add(1, Ordering::Relaxed);
            if scratch.len() < floats {
                scratch.resize(floats, 0.0);
            }
            decode(&mut scratch[..floats]);
            return use_panel(&scratch[..floats]);
        }

        let key = (seg, start, floats);
        if let Some(panel) = {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            inner.map.get_mut(&key).map(|e| {
                e.last_used = tick;
                Arc::clone(&e.panel)
            })
        } {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return use_panel(&panel);
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut buf = vec![0.0f32; floats];
        decode(&mut buf);
        let panel = Arc::new(buf);
        {
            let mut inner = self.inner.lock();
            // Two threads can race the same miss; the loser's insert
            // replaces an identical panel (decode is a pure function of the
            // matrix bytes), so only the accounting needs care.
            if let Some(old) = inner.map.remove(&key) {
                inner.bytes -= old.panel.len() * 4;
            }
            while inner.bytes + panel_bytes > budget {
                let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, e)| e.last_used) else {
                    break;
                };
                let evicted = inner.map.remove(&victim).expect("victim resident");
                inner.bytes -= evicted.panel.len() * 4;
            }
            inner.tick += 1;
            let tick = inner.tick;
            inner.map.insert(key, Entry { panel: Arc::clone(&panel), last_used: tick });
            inner.bytes += panel_bytes;
        }
        use_panel(&panel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch(cache: &PanelCache, seg: u64, start: usize, floats: usize, cap: usize) -> Vec<f32> {
        let mut scratch = Vec::new();
        cache.with_panel(
            seg,
            start,
            floats,
            cap,
            &mut scratch,
            |buf| {
                for (i, v) in buf.iter_mut().enumerate() {
                    *v = (seg as f32) * 1000.0 + start as f32 + i as f32;
                }
            },
            |panel| panel.to_vec(),
        )
    }

    #[test]
    fn hit_replays_decoded_bytes() {
        let cache = PanelCache::new(PanelBudget::Bytes(1 << 20));
        let a = fetch(&cache, 0, 0, 16, 0);
        let b = fetch(&cache, 0, 0, 16, 0);
        assert_eq!(a, b);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.resident_bytes(), 64);
    }

    #[test]
    fn budget_zero_disables_caching() {
        let cache = PanelCache::new(PanelBudget::Bytes(0));
        fetch(&cache, 0, 0, 16, 0);
        fetch(&cache, 0, 0, 16, 0);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        // Room for exactly two 16-float panels.
        let cache = PanelCache::new(PanelBudget::Bytes(128));
        fetch(&cache, 0, 0, 16, 0);
        fetch(&cache, 0, 16, 16, 0);
        assert_eq!(cache.resident_panels(), 2);
        // Touch panel 0 so panel 16 is the LRU victim.
        fetch(&cache, 0, 0, 16, 0);
        fetch(&cache, 0, 32, 16, 0);
        assert_eq!(cache.resident_panels(), 2);
        assert!(cache.resident_bytes() <= 128);
        // Panel 0 survived (hit), panel 16 was evicted (miss).
        let hits = cache.hits();
        fetch(&cache, 0, 0, 16, 0);
        assert_eq!(cache.hits(), hits + 1);
        let misses = cache.misses();
        fetch(&cache, 0, 16, 16, 0);
        assert_eq!(cache.misses(), misses + 1);
    }

    #[test]
    fn oversized_panel_bypasses_cache() {
        let cache = PanelCache::new(PanelBudget::Bytes(32));
        fetch(&cache, 0, 0, 16, 0); // 64 bytes > 32-byte budget
        assert_eq!(cache.resident_panels(), 0);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn auto_budget_resolves_to_store_size() {
        let cache = PanelCache::new(PanelBudget::Auto);
        fetch(&cache, 0, 0, 16, 64); // store is exactly one panel
        fetch(&cache, 0, 0, 16, 64);
        assert_eq!(cache.hits(), 1);
        // A zero-sized store caches nothing under Auto.
        let empty = PanelCache::new(PanelBudget::Auto);
        fetch(&empty, 0, 0, 16, 0);
        assert_eq!(empty.resident_panels(), 0);
    }

    #[test]
    fn invalidate_clears_but_keeps_counters() {
        let cache = PanelCache::new(PanelBudget::Bytes(1 << 20));
        fetch(&cache, 0, 0, 16, 0);
        cache.invalidate();
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.resident_panels(), 0);
        assert_eq!(cache.misses(), 1);
        fetch(&cache, 0, 0, 16, 0);
        assert_eq!(cache.misses(), 2, "re-decoded after invalidate");
    }

    #[test]
    fn clone_starts_cold_with_same_budget() {
        let cache = PanelCache::new(PanelBudget::Bytes(256));
        fetch(&cache, 0, 0, 16, 0);
        let fresh = cache.clone();
        assert_eq!(fresh.budget(), PanelBudget::Bytes(256));
        assert_eq!(fresh.resident_panels(), 0);
        assert_eq!(fresh.hits() + fresh.misses(), 0);
    }

    #[test]
    fn distinct_segments_do_not_alias() {
        let cache = PanelCache::new(PanelBudget::Bytes(1 << 20));
        let a = fetch(&cache, 1, 0, 8, 0);
        let b = fetch(&cache, 2, 0, 8, 0);
        assert_ne!(a, b);
        assert_eq!(cache.misses(), 2);
    }
}
