//! `mcqa-embed` — a deterministic semantic text encoder standing in for
//! PubMedBERT, plus FP16 embedding storage.
//!
//! The paper encodes 173,318 chunks with PubMedBERT into FP16 embeddings
//! (747 MB) for FAISS retrieval. Offline we cannot run a 330M-parameter
//! transformer, but the pipeline only relies on one property of the
//! encoder: *lexical-semantic locality* — text about the same entities and
//! processes lands nearby, unrelated text lands near-orthogonal. A signed
//! feature-hashing projection of word unigrams, word bigrams, and character
//! trigrams has exactly that property (it is a Johnson–Lindenstrauss
//! sketch of a sparse n-gram vector), is deterministic, and needs no
//! weights.
//!
//! * [`encoder`] — [`BioEncoder`]: the projection encoder. Implements
//!   [`mcqa_text::Encoder`], so it plugs straight into the semantic
//!   chunker.
//! * [`matrix`] — [`EmbeddingMatrix`]: row-major embedding storage in
//!   `f32` or compressed FP16 (the paper's choice), with byte
//!   serialisation.
//! * [`cache`] — a concurrent encode cache for repeated texts.
//! * [`panels`] — [`PanelCache`]: resident decoded-F32 panels under a
//!   bounded byte budget, so a batch-of-1 search skips the F16 decode.

pub mod cache;
pub mod encoder;
pub mod matrix;
pub mod panels;

pub use cache::EmbeddingCache;
pub use encoder::{BioEncoder, EmbedConfig};
pub use matrix::{EmbeddingMatrix, Precision};
pub use panels::{PanelBudget, PanelCache};
