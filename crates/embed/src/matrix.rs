//! Row-major embedding storage with optional FP16 compression.
//!
//! The paper stores its 173,318 chunk embeddings as FP16 (747 MB total).
//! [`EmbeddingMatrix`] offers both precisions behind one API and measures
//! the cosine error the compression introduces (property-tested to stay
//! within half-precision bounds).

use mcqa_util::f16::{decode_f16_bytes, encode_f16_bytes};
use serde::{Deserialize, Serialize};

use crate::panels::PanelCache;

/// Storage precision for an embedding matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// 4 bytes per component.
    F32,
    /// 2 bytes per component (the paper's FAISS configuration).
    F16,
}

/// A dense row-major embedding matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingMatrix {
    dim: usize,
    rows: usize,
    precision: Precision,
    /// F32 storage (empty when precision is F16).
    data_f32: Vec<f32>,
    /// F16 storage as raw little-endian bytes (empty when precision is F32).
    data_f16: Vec<u8>,
    /// Squared L2 norm of every *stored* row (i.e. of the decoded F16
    /// values when compressed), maintained at build time via
    /// [`mcqa_util::kernel::sq_norm`] so cosine search degenerates to a
    /// dot product per row at query time. Derived data: recomputed on
    /// deserialisation, never part of the wire format.
    sq_norms: Vec<f32>,
}

impl EmbeddingMatrix {
    /// Create an empty matrix.
    pub fn new(dim: usize, precision: Precision) -> Self {
        assert!(dim > 0);
        Self {
            dim,
            rows: 0,
            precision,
            data_f32: Vec::new(),
            data_f16: Vec::new(),
            sq_norms: Vec::new(),
        }
    }

    /// Build from rows (each must have length `dim`).
    pub fn from_rows(dim: usize, precision: Precision, rows: &[Vec<f32>]) -> Self {
        let mut m = Self::new(dim, precision);
        for r in rows {
            m.push(r);
        }
        m
    }

    /// Append one row.
    pub fn push(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "row dimension mismatch");
        match self.precision {
            Precision::F32 => {
                self.data_f32.extend_from_slice(row);
                self.sq_norms.push(mcqa_util::kernel::sq_norm(row));
            }
            Precision::F16 => {
                let bytes = encode_f16_bytes(row);
                // The cached norm describes the *stored* (quantised) row —
                // the values search will decode — not the f32 input.
                let decoded = decode_f16_bytes(&bytes).expect("even length by construction");
                self.data_f16.extend_from_slice(&bytes);
                self.sq_norms.push(mcqa_util::kernel::sq_norm(&decoded));
            }
        }
        self.rows += 1;
    }

    /// Append many rows, fanning the per-row F16 quantisation out on
    /// `exec`'s pool (the dominant cost of an F16 bulk load). The result
    /// is byte-identical to pushing the rows sequentially in order, at any
    /// worker count; F32 appends are plain memcpy and stay serial.
    pub fn extend_parallel<R: AsRef<[f32]> + Sync>(
        &mut self,
        exec: &mcqa_runtime::Executor,
        rows: &[R],
    ) {
        for row in rows {
            assert_eq!(row.as_ref().len(), self.dim, "row dimension mismatch");
        }
        match self.precision {
            Precision::F32 => {
                for row in rows {
                    self.data_f32.extend_from_slice(row.as_ref());
                    self.sq_norms.push(mcqa_util::kernel::sq_norm(row.as_ref()));
                }
            }
            Precision::F16 => {
                let (encoded, _) = mcqa_runtime::run_stage_batched(
                    exec,
                    "f16-encode",
                    (0..rows.len()).collect(),
                    0,
                    |i| {
                        let bytes = encode_f16_bytes(rows[i].as_ref());
                        let decoded =
                            decode_f16_bytes(&bytes).expect("even length by construction");
                        Ok::<_, String>((bytes, mcqa_util::kernel::sq_norm(&decoded)))
                    },
                );
                for e in encoded {
                    let (bytes, norm) = e.expect("f16 encode cannot fail");
                    self.data_f16.extend_from_slice(&bytes);
                    self.sq_norms.push(norm);
                }
            }
        }
        self.rows += rows.len();
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Storage precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Bytes used by the payload (excluding struct overhead) — lets benches
    /// report the FP16 saving the paper relies on.
    pub fn payload_bytes(&self) -> usize {
        match self.precision {
            Precision::F32 => self.data_f32.len() * 4,
            Precision::F16 => self.data_f16.len(),
        }
    }

    /// Bytes the matrix occupies fully decoded to F32 — what a
    /// [`PanelBudget::Auto`](crate::panels::PanelBudget::Auto) panel cache
    /// budgets for.
    pub fn decoded_bytes(&self) -> usize {
        self.rows * self.dim * 4
    }

    /// Fetch row `i` as `f32` (decompressing when stored as F16).
    ///
    /// Returns `None` when `i` is out of range.
    pub fn row(&self, i: usize) -> Option<Vec<f32>> {
        if i >= self.rows {
            return None;
        }
        Some(match self.precision {
            Precision::F32 => self.data_f32[i * self.dim..(i + 1) * self.dim].to_vec(),
            Precision::F16 => {
                let start = i * self.dim * 2;
                decode_f16_bytes(&self.data_f16[start..start + self.dim * 2])
                    .expect("even length by construction")
            }
        })
    }

    /// Visit every row without allocating per row (decodes into a reused
    /// buffer for F16).
    pub fn for_each_row<F: FnMut(usize, &[f32])>(&self, mut f: F) {
        match self.precision {
            Precision::F32 => {
                for i in 0..self.rows {
                    f(i, &self.data_f32[i * self.dim..(i + 1) * self.dim]);
                }
            }
            Precision::F16 => {
                let mut buf = vec![0.0f32; self.dim];
                for i in 0..self.rows {
                    let start = i * self.dim * 2;
                    for (j, c) in
                        self.data_f16[start..start + self.dim * 2].chunks_exact(2).enumerate()
                    {
                        buf[j] = mcqa_util::F16(u16::from_le_bytes([c[0], c[1]])).to_f32();
                    }
                    f(i, &buf);
                }
            }
        }
    }

    /// The cached squared L2 norm of every stored row, index-aligned with
    /// the rows. Computed at build time with the same fixed-order kernel
    /// exact search uses, so a consumer combining them with
    /// `kernel::dot` reproduces on-the-fly cosine bit-for-bit.
    pub fn row_sq_norms(&self) -> &[f32] {
        &self.sq_norms
    }

    /// Visit the rows in panels of up to `block_rows` rows: `f(start_row,
    /// panel)` receives a dense row-major `&[f32]` of `panel.len() /
    /// dim()` consecutive rows starting at `start_row` (the last panel may
    /// be ragged).
    ///
    /// This is the bulk-decode primitive behind blocked search: an F16
    /// matrix is decoded once per panel into a reused buffer — callers
    /// scoring many queries against the panel amortise that decode across
    /// all of them — while an F32 matrix hands out direct sub-slices of the
    /// backing storage, copy-free.
    pub fn for_each_block<F: FnMut(usize, &[f32])>(&self, block_rows: usize, mut f: F) {
        assert!(block_rows > 0, "block_rows must be positive");
        match self.precision {
            Precision::F32 => {
                for start in (0..self.rows).step_by(block_rows) {
                    let end = (start + block_rows).min(self.rows);
                    f(start, &self.data_f32[start * self.dim..end * self.dim]);
                }
            }
            Precision::F16 => {
                let mut panel = vec![0.0f32; block_rows * self.dim];
                for start in (0..self.rows).step_by(block_rows) {
                    let end = (start + block_rows).min(self.rows);
                    let n = (end - start) * self.dim;
                    self.decode_panel_into(start, end, &mut panel[..n]);
                    f(start, &panel[..n]);
                }
            }
        }
    }

    /// Decode rows `start..end` into `out` (which must hold exactly
    /// `(end - start) * dim` f32s). This is **the** F16 panel decode: both
    /// the streaming path ([`EmbeddingMatrix::for_each_block`]) and the
    /// cache-fill path ([`EmbeddingMatrix::for_each_panel`]) bottom out
    /// here, which is what makes cached and uncached scoring bit-identical
    /// by construction.
    fn decode_panel_into(&self, start: usize, end: usize, out: &mut [f32]) {
        debug_assert_eq!(out.len(), (end - start) * self.dim);
        let bytes = &self.data_f16[start * self.dim * 2..end * self.dim * 2];
        for (dst, c) in out.iter_mut().zip(bytes.chunks_exact(2)) {
            *dst = mcqa_util::F16(u16::from_le_bytes([c[0], c[1]])).to_f32();
        }
    }

    /// Cache-aware panel iteration: like [`EmbeddingMatrix::for_each_block`]
    /// but F16 panels are fetched from (and made resident in) `cache` under
    /// its byte budget, so repeat queries skip the decode entirely. `seg`
    /// namespaces this matrix inside a cache shared across segments.
    ///
    /// An F32 matrix hands out direct sub-slices exactly as
    /// `for_each_block` does — it is already resident, so the cache is
    /// bypassed. A miss (or a disabled cache) decodes through the same
    /// `decode_panel_into` the streaming path uses:
    /// panels observed through this accessor are byte-for-byte the panels
    /// `for_each_block` yields, at every budget including zero.
    pub fn for_each_panel<F: FnMut(usize, &[f32])>(
        &self,
        cache: &PanelCache,
        seg: u64,
        block_rows: usize,
        mut f: F,
    ) {
        assert!(block_rows > 0, "block_rows must be positive");
        match self.precision {
            Precision::F32 => {
                for start in (0..self.rows).step_by(block_rows) {
                    let end = (start + block_rows).min(self.rows);
                    f(start, &self.data_f32[start * self.dim..end * self.dim]);
                }
            }
            Precision::F16 => {
                let auto_cap = self.decoded_bytes();
                let mut scratch = Vec::new();
                for start in (0..self.rows).step_by(block_rows) {
                    let end = (start + block_rows).min(self.rows);
                    let n = (end - start) * self.dim;
                    cache.with_panel(
                        seg,
                        start,
                        n,
                        auto_cap,
                        &mut scratch,
                        |buf| self.decode_panel_into(start, end, buf),
                        |panel| f(start, panel),
                    );
                }
            }
        }
    }

    /// Serialise to bytes (header + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload_bytes() + 32);
        out.extend_from_slice(b"EMBX");
        out.extend_from_slice(&(self.dim as u32).to_le_bytes());
        out.extend_from_slice(&(self.rows as u32).to_le_bytes());
        out.push(match self.precision {
            Precision::F32 => 0,
            Precision::F16 => 1,
        });
        match self.precision {
            Precision::F32 => {
                for v in &self.data_f32 {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Precision::F16 => out.extend_from_slice(&self.data_f16),
        }
        out
    }

    /// Deserialise from bytes produced by [`EmbeddingMatrix::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 13 || &bytes[..4] != b"EMBX" {
            return None;
        }
        let dim = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        let rows = u32::from_le_bytes(bytes[8..12].try_into().ok()?) as usize;
        let precision = match bytes[12] {
            0 => Precision::F32,
            1 => Precision::F16,
            _ => return None,
        };
        let payload = &bytes[13..];
        let mut m = match precision {
            Precision::F32 => {
                if payload.len() != dim * rows * 4 {
                    return None;
                }
                let data_f32 = payload
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect();
                Self { dim, rows, precision, data_f32, data_f16: Vec::new(), sq_norms: Vec::new() }
            }
            Precision::F16 => {
                if payload.len() != dim * rows * 2 {
                    return None;
                }
                Self {
                    dim,
                    rows,
                    precision,
                    data_f32: Vec::new(),
                    data_f16: payload.to_vec(),
                    sq_norms: Vec::new(),
                }
            }
        };
        // The norm cache is derived data: rebuild it rather than widening
        // the wire format (the bytes stay byte-compatible both ways).
        let mut sq_norms = Vec::with_capacity(m.rows);
        m.for_each_row(|_, row| sq_norms.push(mcqa_util::kernel::sq_norm(row)));
        m.sq_norms = sq_norms;
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcqa_text::similarity::dense_cosine;

    fn sample_rows(n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                let mut v: Vec<f32> = (0..dim).map(|j| ((i * dim + j) as f32).sin()).collect();
                let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
                v.iter_mut().for_each(|x| *x /= norm);
                v
            })
            .collect()
    }

    #[test]
    fn f32_roundtrip_exact() {
        let rows = sample_rows(10, 32);
        let m = EmbeddingMatrix::from_rows(32, Precision::F32, &rows);
        assert_eq!(m.len(), 10);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(&m.row(i).unwrap(), r);
        }
        assert!(m.row(10).is_none());
    }

    #[test]
    fn f16_compression_halves_storage() {
        let rows = sample_rows(50, 64);
        let m32 = EmbeddingMatrix::from_rows(64, Precision::F32, &rows);
        let m16 = EmbeddingMatrix::from_rows(64, Precision::F16, &rows);
        assert_eq!(m16.payload_bytes() * 2, m32.payload_bytes());
    }

    #[test]
    fn f16_cosine_error_small() {
        let rows = sample_rows(20, 128);
        let m = EmbeddingMatrix::from_rows(128, Precision::F16, &rows);
        for (i, r) in rows.iter().enumerate() {
            let back = m.row(i).unwrap();
            let cos = dense_cosine(r, &back);
            assert!(cos > 0.9999, "row {i}: cosine {cos}");
        }
    }

    #[test]
    fn for_each_row_matches_row() {
        for precision in [Precision::F32, Precision::F16] {
            let rows = sample_rows(7, 16);
            let m = EmbeddingMatrix::from_rows(16, precision, &rows);
            let mut visited = 0;
            m.for_each_row(|i, r| {
                assert_eq!(r, m.row(i).unwrap().as_slice());
                visited += 1;
            });
            assert_eq!(visited, 7);
        }
    }

    #[test]
    fn for_each_block_matches_row_at_every_block_size() {
        for precision in [Precision::F32, Precision::F16] {
            let rows = sample_rows(23, 16);
            let m = EmbeddingMatrix::from_rows(16, precision, &rows);
            for block_rows in [1usize, 4, 16, 23, 64] {
                let mut seen = 0usize;
                m.for_each_block(block_rows, |start, panel| {
                    assert_eq!(start, seen, "panels are consecutive");
                    assert_eq!(panel.len() % 16, 0);
                    let n = panel.len() / 16;
                    assert!(n <= block_rows);
                    for (j, row) in panel.chunks_exact(16).enumerate() {
                        assert_eq!(row, m.row(start + j).unwrap().as_slice(), "{precision:?}");
                    }
                    seen += n;
                });
                assert_eq!(seen, 23, "{precision:?} block={block_rows}");
            }
        }
    }

    #[test]
    fn row_sq_norms_describe_stored_rows_and_survive_roundtrip() {
        for precision in [Precision::F32, Precision::F16] {
            let rows = sample_rows(9, 24);
            let m = EmbeddingMatrix::from_rows(24, precision, &rows);
            assert_eq!(m.row_sq_norms().len(), 9);
            for i in 0..9 {
                let expect = mcqa_util::kernel::sq_norm(&m.row(i).unwrap());
                assert_eq!(m.row_sq_norms()[i].to_bits(), expect.to_bits(), "{precision:?}");
            }
            let back = EmbeddingMatrix::from_bytes(&m.to_bytes()).unwrap();
            assert_eq!(back.row_sq_norms(), m.row_sq_norms(), "recomputed on decode");
        }
    }

    #[test]
    fn bytes_roundtrip() {
        for precision in [Precision::F32, Precision::F16] {
            let rows = sample_rows(5, 24);
            let m = EmbeddingMatrix::from_rows(24, precision, &rows);
            let b = m.to_bytes();
            let back = EmbeddingMatrix::from_bytes(&b).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn bytes_rejects_garbage() {
        assert!(EmbeddingMatrix::from_bytes(b"").is_none());
        assert!(EmbeddingMatrix::from_bytes(b"EMBX").is_none());
        let rows = sample_rows(2, 8);
        let mut b = EmbeddingMatrix::from_rows(8, Precision::F16, &rows).to_bytes();
        b.truncate(b.len() - 3);
        assert!(EmbeddingMatrix::from_bytes(&b).is_none(), "length mismatch rejected");
        b[0] = b'X';
        assert!(EmbeddingMatrix::from_bytes(&b).is_none());
    }

    #[test]
    fn extend_parallel_matches_sequential_push() {
        let exec = mcqa_runtime::Executor::global();
        for precision in [Precision::F32, Precision::F16] {
            let rows = sample_rows(137, 24);
            let serial = EmbeddingMatrix::from_rows(24, precision, &rows);
            let mut parallel = EmbeddingMatrix::new(24, precision);
            parallel.extend_parallel(exec, &rows);
            assert_eq!(parallel, serial, "{precision:?}");
            assert_eq!(parallel.to_bytes(), serial.to_bytes(), "byte-identical {precision:?}");
        }
    }

    #[test]
    #[should_panic(expected = "row dimension mismatch")]
    fn extend_parallel_checks_dims() {
        let mut m = EmbeddingMatrix::new(8, Precision::F16);
        m.extend_parallel(mcqa_runtime::Executor::global(), &[vec![0.0; 7]]);
    }

    #[test]
    #[should_panic(expected = "row dimension mismatch")]
    fn wrong_dim_row_panics() {
        let mut m = EmbeddingMatrix::new(8, Precision::F32);
        m.push(&[0.0; 9]);
    }

    #[test]
    fn empty_matrix() {
        let m = EmbeddingMatrix::new(16, Precision::F16);
        assert!(m.is_empty());
        assert_eq!(m.payload_bytes(), 0);
        assert!(m.row(0).is_none());
        let b = m.to_bytes();
        assert_eq!(EmbeddingMatrix::from_bytes(&b).unwrap(), m);
    }
}
