//! A close look at reasoning-trace distillation: generate traces for one
//! question in all three modes, audit the leakage control, and show why
//! traces beat chunks for a small-window model (token arithmetic).
//!
//! ```sh
//! cargo run --release --example trace_distillation
//! ```

use distllm::llm::context::assemble;
use distllm::llm::{Passage, PassageSource};
use distllm::prelude::*;

fn main() {
    let output = Pipeline::run(&PipelineConfig::tiny(42));
    let item = &output.items[0];
    let record = &output.questions[0];

    println!("== question ==\n{}", item.render());
    println!("answer: {} ({})\n", item.correct_letter(), item.correct_text());
    println!(
        "provenance: chunk {} in {} (fact {})",
        record.provenance.chunk_id, record.provenance.file_path, record.provenance.fact_id
    );

    println!("\n== the three reasoning modes (Figure 3) ==");
    for trace in output.traces.iter().filter(|t| t.question_id == item.qid) {
        let tokens = distllm::text::token_count(&trace.trace);
        println!("\n--- {} ({tokens} tokens) ---", trace.mode.label());
        println!("{}", trace.trace);
        assert!(!trace.trace.contains(item.correct_text()), "leakage audit failed");
    }
    println!("\nleakage audit: no trace contains the answer string ✓");

    // Why traces help small models: context-window arithmetic.
    let source_chunk = output
        .chunks
        .iter()
        .find(|c| c.chunk_id == record.provenance.chunk_id)
        .expect("source chunk exists");
    let mk_chunk_passages = |n: usize| -> Vec<Passage> {
        (0..n)
            .map(|_| Passage {
                text: source_chunk.text.clone(),
                source: PassageSource::Chunk,
                supports: Some(item.fact),
                score: 1.0,
            })
            .collect()
    };
    let trace_text = &output
        .traces
        .iter()
        .find(|t| t.question_id == item.qid && t.mode == TraceMode::Efficient)
        .expect("trace exists")
        .trace;
    let mk_trace_passages = |n: usize| -> Vec<Passage> {
        (0..n)
            .map(|_| Passage {
                text: trace_text.clone(),
                source: PassageSource::Trace(TraceMode::Efficient),
                supports: Some(item.fact),
                score: 1.0,
            })
            .collect()
    };

    println!("\n== context-window truncation (the small-model mechanism) ==");
    println!(
        "{:<22} {:>14} {:>16} {:>18}",
        "window", "chunk passages", "trace passages", "prompt tokens(ch)"
    );
    for window in [2048usize, 4096, 8192, 32_768] {
        let c = assemble(item, &mk_chunk_passages(5), window);
        let t = assemble(item, &mk_trace_passages(5), window);
        println!(
            "{:<22} {:>10}/5 in {:>12}/5 in {:>18}",
            window, c.passages_in_window, t.passages_in_window, c.prompt_tokens
        );
    }
    println!(
        "\nchunk ≈ {} tokens, trace ≈ {} tokens: five chunks overflow a 2k window, \
         five traces never do.",
        distllm::text::token_count(&source_chunk.text),
        distllm::text::token_count(trace_text)
    );
}
