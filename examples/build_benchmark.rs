//! Build a benchmark and export its artifacts as JSONL — the workflow a
//! downstream user runs to produce a fresh domain benchmark from a corpus.
//!
//! Writes `questions.jsonl` and `traces-<mode>.jsonl` into `./artifacts/`.
//!
//! ```sh
//! cargo run --release --example build_benchmark -- [scale] [seed]
//! ```

use distllm::core::schema::to_jsonl_document;
use distllm::prelude::*;
use std::io::Write;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let config = PipelineConfig::at_scale(scale, seed);
    let output = Pipeline::run(&config);
    print!("{}", output.report.render());

    std::fs::create_dir_all("artifacts").expect("create artifacts dir");

    // Questions (Figure-2 records).
    let path = "artifacts/questions.jsonl";
    let mut f = std::fs::File::create(path).expect("create questions.jsonl");
    f.write_all(to_jsonl_document(&output.questions).as_bytes()).expect("write");
    println!("wrote {} question records → {path}", output.questions.len());

    // Traces (Figure-3 records), one file per mode like the paper's three
    // FAISS databases.
    for mode in TraceMode::ALL {
        let records: Vec<_> = output.traces.iter().filter(|t| t.mode == mode).collect();
        let path = format!("artifacts/traces-{}.jsonl", mode.label());
        let mut f = std::fs::File::create(&path).expect("create trace file");
        f.write_all(to_jsonl_document(&records).as_bytes()).expect("write");
        println!("wrote {} {} traces → {path}", records.len(), mode.label());
    }

    // Provenance audit: every accepted question's chunk must resolve.
    let resolvable = output
        .questions
        .iter()
        .filter(|q| output.chunks.iter().any(|c| c.chunk_id == q.provenance.chunk_id))
        .count();
    println!(
        "provenance audit: {resolvable}/{} records resolve to a source chunk",
        output.questions.len()
    );

    // Topic census of the accepted benchmark.
    let mut by_topic: std::collections::BTreeMap<&str, usize> = Default::default();
    for q in &output.questions {
        *by_topic.entry(q.topic.name()).or_default() += 1;
    }
    println!("\ntopic census of accepted questions:");
    for (topic, n) in by_topic {
        println!("  {topic:<34} {n}");
    }
}
