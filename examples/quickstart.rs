//! Quickstart: build a small benchmark, look at the artifacts, evaluate
//! two models, and print the Figure-1 workflow census.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use distllm::prelude::*;

fn main() {
    // 1. Run the end-to-end pipeline at 2% of the paper's corpus scale.
    let config = PipelineConfig::at_scale(0.02, 42);
    println!(
        "building benchmark: {} papers + {} abstracts, seed {}",
        config.acquisition.full_papers, config.acquisition.abstracts, config.seed
    );
    let output = Pipeline::run(&config);

    println!("\n== workflow census (paper Figure 1) ==");
    print!("{}", output.report.render());

    println!(
        "\nchunks: {}   candidates: {}   accepted: {} ({:.1}% — paper: 9.6%)",
        output.chunks.len(),
        output.candidates,
        output.items.len(),
        100.0 * output.acceptance_rate()
    );

    // 2. Inspect one accepted question (Figure-2 schema).
    if let Some(q) = output.questions.first() {
        println!("\n== sample question record ==");
        println!("{}", serde_json::to_string_pretty(q).expect("serialises"));
    }

    // 3. Evaluate two representative models under all five conditions.
    let evaluator = Evaluator::new(&output, EvalConfig::default());
    let small = MODEL_CARDS[1].clone(); // TinyLlama-1.1B-Chat
    let large = MODEL_CARDS[6].clone(); // Llama-3.1-8B-Instruct
    let run = evaluator.run_cards(&[small, large]);

    println!("\n== accuracy on the synthetic benchmark ==");
    for m in &run.models {
        println!("{}", m.name);
        for (cond, acc) in &m.synth {
            let iv = acc.interval();
            println!(
                "  {:<18} {:.3}  (95% CI {:.3}-{:.3}, n={})",
                cond.label(),
                acc.value(),
                iv.lo,
                iv.hi,
                acc.total
            );
        }
    }
}
