//! Reproduce the paper's full evaluation: all eight SLMs under all five
//! conditions on the synthetic benchmark, printing Table 2 and Figure 4.
//!
//! ```sh
//! cargo run --release --example evaluate_models -- [scale] [seed]
//! ```

use distllm::eval::results::{render_fig, render_table2, FigureSeries};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let (output, run) = distllm::reproduce(scale, seed);
    println!(
        "benchmark: {} questions from {} chunks ({} docs)\n",
        output.items.len(),
        output.chunks.len(),
        output.library.len()
    );

    println!("{}", render_table2(&run));
    println!("{}", render_fig(&run, FigureSeries::Fig4Synthetic));

    // Per-model measured retrieval rates — the emergent quantities the
    // behaviour cards were calibrated against.
    println!("measured usable-hit rates (after context-window truncation):");
    println!(
        "{:<26} {:>9} {:>9} {:>9} {:>9}",
        "model", "chunks", "rt-detail", "rt-focus", "rt-effic"
    );
    for m in &run.models {
        println!(
            "{:<26} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            m.name,
            m.rates.synth_chunk,
            m.rates.synth_trace[0],
            m.rates.synth_trace[1],
            m.rates.synth_trace[2],
        );
    }
}
