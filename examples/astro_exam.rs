//! The external-validity experiment: evaluate the model roster on the
//! synthetic Astro exam (all questions + no-math subset), printing
//! Tables 3 and 4 and Figures 5 and 6.
//!
//! ```sh
//! cargo run --release --example astro_exam -- [scale] [seed]
//! ```

use distllm::eval::results::{render_fig, render_table3, render_table4, FigureSeries};
use distllm::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let output = Pipeline::run(&PipelineConfig::at_scale(scale, seed));
    let evaluator = Evaluator::new(&output, EvalConfig::default());

    let exam = evaluator.exam();
    let math = exam.items.iter().filter(|i| i.is_math).count();
    println!(
        "exam: {} raw questions, {} excluded as multimodal, {} evaluated",
        exam.evaluated() + exam.excluded_multimodal.len(),
        exam.excluded_multimodal.len(),
        exam.evaluated()
    );
    println!(
        "math classifier (GPT-5 stand-in): {math} math / {} no-math; \
         agreement with ground truth {:.1}%",
        exam.evaluated() - math,
        100.0 * exam.classifier_agreement()
    );
    for (i, stem) in exam.excluded_multimodal.iter().enumerate() {
        println!("  excluded[{i}]: {stem}");
    }
    println!();

    let run = evaluator.run();
    println!("{}", render_table3(&run));
    println!("{}", render_table4(&run));
    println!("{}", render_fig(&run, FigureSeries::Fig5AstroAll));
    println!("{}", render_fig(&run, FigureSeries::Fig6AstroNoMath));
}
