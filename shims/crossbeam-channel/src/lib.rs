//! Offline stand-in for `crossbeam-channel`, backed by `std::sync::mpsc`.
//!
//! Covers the bounded-channel subset this workspace uses: `bounded`,
//! `Sender::send`/`try_send`, `Receiver::recv`/`recv_timeout`, sender
//! cloning. The std receiver is single-consumer, which matches every call
//! site here.

use std::sync::mpsc;
use std::time::Duration;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

/// Sending half of a bounded channel.
pub struct Sender<T>(mpsc::SyncSender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0.send(value)
    }

    /// Non-blocking send: `Err(TrySendError::Full)` when the channel is at
    /// capacity (the admission-control path), `Err(Disconnected)` when the
    /// receiver is gone.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        self.0.try_send(value)
    }
}

/// Receiving half of a bounded channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv()
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout)
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv()
    }

    pub fn iter(&self) -> mpsc::Iter<'_, T> {
        self.0.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

/// Create a bounded channel with the given capacity (0 = rendezvous).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender(tx), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_send_recv_across_threads() {
        let (tx, rx) = bounded(4);
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        }
        handle.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn try_send_reports_full_without_blocking() {
        let (tx, rx) = bounded(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
    }
}
