//! Offline stand-in for `parking_lot`: std locks with parking_lot's
//! poison-free, `Result`-free locking API.

use std::sync;

/// Mutex whose `lock()` returns the guard directly (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// RwLock whose `read()`/`write()` return guards directly (no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }
}
