//! Offline stand-in for `serde`.
//!
//! The real serde is format-agnostic; this workspace only ever serialises to
//! and from JSON, so the shim collapses the serializer/deserializer traits
//! into a single JSON-shaped [`Content`] tree. The derive macros (re-exported
//! from `serde_derive`) generate `to_content`/`from_content` impls that match
//! serde's externally-tagged enum and struct-as-map conventions, which keeps
//! the wire format compatible with what the real serde_json would emit for
//! the types in this workspace.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the single data model behind both traits.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map-field lookup (mirrors `serde_json::Value::get`).
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(x) => Some(*x),
            Content::I64(x) => Some(*x as f64),
            Content::U64(x) => Some(*x as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(x) => Some(*x),
            Content::I64(x) if *x >= 0 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(x) => Some(*x),
            Content::U64(x) if *x <= i64::MAX as u64 => Some(*x as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

static NULL: Content = Content::Null;

impl std::ops::Index<&str> for Content {
    type Output = Content;
    /// Missing keys (or non-map receivers) index to `Null`, matching
    /// `serde_json::Value`'s behaviour.
    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;
    fn index(&self, i: usize) -> &Content {
        match self {
            Content::Seq(xs) => xs.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    pub fn in_field(field: &str, inner: DeError) -> Self {
        DeError(format!("{field}: {}", inner.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Look up a required struct field in a map body.
pub fn field<'a>(m: &'a [(String, Content)], key: &str) -> Result<&'a Content, DeError> {
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{key}`")))
}

/// Serialization half: render `self` into the [`Content`] data model.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Deserialization half: rebuild `Self` from the [`Content`] data model.
pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

// ---- identity impls so `serde_json::Value` round-trips ---------------------

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

// ---- primitives ------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c.as_i64().ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v).map_err(|_| DeError::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c.as_u64().ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v).map_err(|_| DeError::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_f64().ok_or_else(|| DeError::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_f64().map(|x| x as f32).ok_or_else(|| DeError::custom("expected f32"))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c.as_str().ok_or_else(|| DeError::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str().map(str::to_owned).ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

// ---- containers ------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(xs) => xs.iter().map(T::from_content).collect(),
            _ => Err(DeError::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v: Vec<T> = Vec::from_content(c)?;
        v.try_into().map_err(|_| DeError::custom("wrong array length"))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(xs) => {
                        let mut it = xs.iter();
                        Ok(($(
                            $t::from_content(it.next().ok_or_else(|| DeError::custom("tuple too short"))?)?,
                        )+))
                    }
                    _ => Err(DeError::custom("expected tuple sequence")),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// Maps serialise as a sequence of [key, value] pairs: JSON objects require
// string keys, but this workspace keys maps by enums, ids, and tuples.
macro_rules! impl_map {
    ($name:ident, $($bound:tt)+) => {
        impl<K: Serialize, V: Serialize> Serialize for $name<K, V> {
            fn to_content(&self) -> Content {
                let mut pairs: Vec<Content> = self
                    .iter()
                    .map(|(k, v)| Content::Seq(vec![k.to_content(), v.to_content()]))
                    .collect();
                // Deterministic output for hash maps.
                pairs.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
                Content::Seq(pairs)
            }
        }
        impl<K: Deserialize + $($bound)+, V: Deserialize> Deserialize for $name<K, V> {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(xs) => xs
                        .iter()
                        .map(|pair| <(K, V)>::from_content(pair))
                        .collect(),
                    _ => Err(DeError::custom("expected map pair sequence")),
                }
            }
        }
    };
}
impl_map!(HashMap, Eq + Hash);
impl_map!(BTreeMap, Ord);

macro_rules! impl_set {
    ($name:ident, $($bound:tt)+) => {
        impl<T: Serialize> Serialize for $name<T> {
            fn to_content(&self) -> Content {
                let mut xs: Vec<Content> = self.iter().map(Serialize::to_content).collect();
                xs.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
                Content::Seq(xs)
            }
        }
        impl<T: Deserialize + $($bound)+> Deserialize for $name<T> {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(xs) => xs.iter().map(T::from_content).collect(),
                    _ => Err(DeError::custom("expected set sequence")),
                }
            }
        }
    };
}
impl_set!(HashSet, Eq + Hash);
impl_set!(BTreeSet, Ord);
