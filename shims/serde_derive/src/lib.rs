//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! shim.
//!
//! The real serde_derive rides on `syn`/`quote`; neither is available in this
//! offline workspace, so this macro parses the item's token stream by hand.
//! Supported shapes — exactly the ones the workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialise transparently, like serde),
//! * unit structs,
//! * enums whose variants are unit, tuple, or struct-like (externally
//!   tagged, like serde's default representation).
//!
//! Generic types and serde attributes (`#[serde(...)]`) are not supported
//! and fail with a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Skip attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(...)`) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Count comma-separated items at angle-bracket depth 0 in a token list.
fn count_top_level_items(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut items = 1usize;
    let mut saw_token_since_comma = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                items += 1;
                saw_token_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        items -= 1; // trailing comma
    }
    items
}

/// Extract field names from a named-fields brace group.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else { break };
        names.push(name.to_string());
        i += 1;
        // Expect `:`, then skip the type until a top-level comma.
        debug_assert!(matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'));
        i += 1;
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else { break };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Tuple(count_top_level_items(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Named(parse_named_fields(&inner))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the separating comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde shim derive does not support generics on `{name}`"));
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(count_top_level_items(&inner))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body for `{name}`: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::Enum { name, variants: parse_variants(&inner) })
            }
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other} {name}`")),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let pairs: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Content::Map(vec![{}])", pairs.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_content(&self.{k})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
                }
                Fields::Unit => "::serde::Content::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_content(&self) -> ::serde::Content {{ {body} }} \
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Content::Str(\"{vname}\".to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Content::Map(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_content(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_content(f{k})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Content::Map(vec![(\"{vname}\".to_string(), ::serde::Content::Seq(vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let pairs: Vec<String> = fs
                                .iter()
                                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_content({f}))"))
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(vec![(\"{vname}\".to_string(), ::serde::Content::Map(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_content(&self) -> ::serde::Content {{ \
                     match self {{ {} }} \
                   }} \
                 }}",
                arms.join(" ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_content(::serde::field(m, \"{f}\")?) \
                                 .map_err(|e| ::serde::DeError::in_field(\"{name}.{f}\", e))?,"
                            )
                        })
                        .collect();
                    format!(
                        "let m = match c {{ \
                           ::serde::Content::Map(m) => m, \
                           _ => return Err(::serde::DeError::custom(\"{name}: expected map\")), \
                         }}; \
                         Ok({name} {{ {} }})",
                        inits.join(" ")
                    )
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_content(c)?))")
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| {
                            format!(
                                "::serde::Deserialize::from_content(xs.get({k}).ok_or_else(|| ::serde::DeError::custom(\"{name}: tuple too short\"))?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let xs = match c {{ \
                           ::serde::Content::Seq(xs) => xs, \
                           _ => return Err(::serde::DeError::custom(\"{name}: expected seq\")), \
                         }}; \
                         Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("let _ = c; Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!("\"{vname}\" => Ok({name}::{vname}),"),
                        Fields::Tuple(1) => format!(
                            "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_content(v)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::from_content(xs.get({k}).ok_or_else(|| ::serde::DeError::custom(\"{name}::{vname}: tuple too short\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{ \
                                   let xs = match v {{ \
                                     ::serde::Content::Seq(xs) => xs, \
                                     _ => return Err(::serde::DeError::custom(\"{name}::{vname}: expected seq\")), \
                                   }}; \
                                   Ok({name}::{vname}({})) \
                                 }},",
                                inits.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_content(::serde::field(vm, \"{f}\")?)?,"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{ \
                                   let vm = match v {{ \
                                     ::serde::Content::Map(vm) => vm, \
                                     _ => return Err(::serde::DeError::custom(\"{name}::{vname}: expected map\")), \
                                   }}; \
                                   Ok({name}::{vname} {{ {} }}) \
                                 }},",
                                inits.join(" ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ \
                     match c {{ \
                       ::serde::Content::Str(s) => match s.as_str() {{ \
                         {} \
                         other => Err(::serde::DeError::custom(format!(\"{name}: unknown variant {{other}}\"))), \
                       }}, \
                       ::serde::Content::Map(m) if m.len() == 1 => {{ \
                         let (k, v) = &m[0]; \
                         let _ = v; \
                         match k.as_str() {{ \
                           {} \
                           other => Err(::serde::DeError::custom(format!(\"{name}: unknown variant {{other}}\"))), \
                         }} \
                       }}, \
                       _ => Err(::serde::DeError::custom(\"{name}: expected variant\")), \
                     }} \
                   }} \
                 }}",
                unit_arms.join(" "),
                tagged_arms.join(" ")
            )
        }
    }
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("error parses"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
