//! Offline stand-in for `serde_json`: a compact JSON writer and a
//! recursive-descent parser over the serde shim's [`Content`] data model.

use serde::{Content, Deserialize, Serialize};

/// JSON value — the serde shim's content tree doubles as the value type.
pub type Value = Content;

/// Serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

// ---- serialization ---------------------------------------------------------

// The writer is generic over `fmt::Write` so the same code path backs both
// string serialization and [`to_writer`]'s streaming `io::Write` sinks (a
// hasher, a file): whatever bytes `to_string` would produce are exactly the
// bytes a sink receives.

fn escape_into<W: std::fmt::Write>(s: &str, out: &mut W) -> std::fmt::Result {
    out.write_char('"')?;
    for ch in s.chars() {
        match ch {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

fn write_f64<W: std::fmt::Write>(x: f64, out: &mut W) -> std::fmt::Result {
    if x.is_finite() {
        // Rust's shortest-roundtrip formatting keeps values exact on re-parse.
        write!(out, "{x}")
    } else {
        out.write_str("null")
    }
}

fn write_indent<W: std::fmt::Write>(out: &mut W, level: usize) -> std::fmt::Result {
    out.write_char('\n')?;
    for _ in 0..level {
        out.write_str("  ")?;
    }
    Ok(())
}

fn write_content<W: std::fmt::Write>(
    c: &Content,
    out: &mut W,
    indent: Option<usize>,
) -> std::fmt::Result {
    match c {
        Content::Null => out.write_str("null"),
        Content::Bool(b) => out.write_str(if *b { "true" } else { "false" }),
        Content::I64(x) => write!(out, "{x}"),
        Content::U64(x) => write!(out, "{x}"),
        Content::F64(x) => write_f64(*x, out),
        Content::Str(s) => escape_into(s, out),
        Content::Seq(xs) => {
            out.write_char('[')?;
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                if let Some(level) = indent {
                    write_indent(out, level + 1)?;
                }
                write_content(x, out, indent.map(|l| l + 1))?;
            }
            if let Some(level) = indent {
                if !xs.is_empty() {
                    write_indent(out, level)?;
                }
            }
            out.write_char(']')
        }
        Content::Map(m) => {
            out.write_char('{')?;
            for (i, (k, v)) in m.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                if let Some(level) = indent {
                    write_indent(out, level + 1)?;
                }
                escape_into(k, out)?;
                out.write_char(':')?;
                if indent.is_some() {
                    out.write_char(' ')?;
                }
                write_content(v, out, indent.map(|l| l + 1))?;
            }
            if let Some(level) = indent {
                if !m.is_empty() {
                    write_indent(out, level)?;
                }
            }
            out.write_char('}')
        }
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None).expect("writing to a String cannot fail");
    Ok(out)
}

/// Serialize to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(0)).expect("writing to a String cannot fail");
    Ok(out)
}

/// Serialize to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize compact JSON straight into an [`std::io::Write`] sink.
///
/// The bytes streamed are exactly [`to_string`]'s output, without ever
/// materialising that string — the entry point for hot paths that hash or
/// persist a canonical encoding (e.g. the model layer's content-addressed
/// cache keys, computed ~270k times per evaluation run).
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    writer: W,
    value: &T,
) -> Result<(), Error> {
    struct IoFmt<W: std::io::Write> {
        inner: W,
        error: Option<std::io::Error>,
    }
    impl<W: std::io::Write> std::fmt::Write for IoFmt<W> {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            self.inner.write_all(s.as_bytes()).map_err(|e| {
                self.error = Some(e);
                std::fmt::Error
            })
        }
    }
    let mut out = IoFmt { inner: writer, error: None };
    write_content(&value.to_content(), &mut out, None).map_err(|_| {
        let io = out.error.take().expect("fmt failure carries the io error");
        Error(format!("io error: {io}"))
    })
}

// ---- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("bad escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo_hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| self.err("short surrogate"))?;
                                let lo_hex = std::str::from_utf8(lo_hex)
                                    .map_err(|_| self.err("bad surrogate"))?;
                                let lo = u32::from_str_radix(lo_hex, 16)
                                    .map_err(|_| self.err("bad surrogate"))?;
                                self.pos += 4;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("eof"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>().map(Content::F64).map_err(|_| self.err("bad number"))
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.eat(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(xs));
        }
        loop {
            xs.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(xs));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.eat(b'{')?;
        let mut m = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(m));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            m.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_content(&content).map_err(Error::from)
}

/// Parse JSON bytes into any `Deserialize` type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        let x: f64 = from_str("1.5").unwrap();
        assert_eq!(x, 1.5);
        let y: u64 = from_str(&u64::MAX.to_string()).unwrap();
        assert_eq!(y, u64::MAX);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a \"quoted\" line\nwith \\ unicode ≈ and tab\t.";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u32, 2, 3];
        let back: Vec<u32> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let m: std::collections::HashMap<String, u32> =
            [("a".to_string(), 1u32), ("b".to_string(), 2)].into_iter().collect();
        let back: std::collections::HashMap<String, u32> =
            from_str(&to_string(&m).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn value_get_works() {
        let v: Value = from_str(r#"{"a": 1, "b": [true, null]}"#).unwrap();
        assert!(v.get("a").is_some());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn to_writer_streams_to_string_bytes_exactly() {
        let v: Value =
            from_str(r#"{"a": 1, "esc": "q\"\\\n\tz", "xs": [1.5, null, true], "neg": -3}"#)
                .unwrap();
        let mut streamed = Vec::new();
        to_writer(&mut streamed, &v).unwrap();
        assert_eq!(streamed, to_string(&v).unwrap().into_bytes());
    }

    #[test]
    fn to_writer_surfaces_io_errors() {
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink closed"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = to_writer(Broken, &42u32).unwrap_err();
        assert!(err.to_string().contains("sink closed"), "{err}");
    }

    #[test]
    fn float_display_integers_reparse() {
        // 1.0 prints as "1"; numeric coercion must bring it back as f64.
        let x: f64 = from_str(&to_string(&1.0f64).unwrap()).unwrap();
        assert_eq!(x, 1.0);
    }
}
