//! Offline stand-in for `crossbeam-deque`.
//!
//! Same API shape — [`Injector`], [`Worker`], [`Stealer`], [`Steal`] — with
//! mutex-protected `VecDeque`s instead of lock-free Chase-Lev deques. The
//! locking discipline means `Steal::Retry` is never produced; callers that
//! loop on `Retry` simply terminate faster.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    Empty,
    Success(T),
    Retry,
}

impl<T> Steal<T> {
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Global FIFO injector queue.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    pub fn new() -> Self {
        Injector { queue: Mutex::new(VecDeque::new()) }
    }

    pub fn push(&self, task: T) {
        lock(&self.queue).push_back(task);
    }

    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Move a batch of tasks into `dest`'s local deque and pop one.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = lock(&self.queue);
        let Some(first) = q.pop_front() else {
            return Steal::Empty;
        };
        // Take up to half the remaining queue (capped) along with the task.
        let batch = (q.len() / 2).min(16);
        if batch > 0 {
            let mut dest_q = lock(&dest.queue);
            for _ in 0..batch {
                match q.pop_front() {
                    Some(t) => dest_q.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }
}

/// A worker's own deque (LIFO pop, like `crossbeam`'s `new_lifo`).
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
    lifo: bool,
}

impl<T> Worker<T> {
    pub fn new_lifo() -> Self {
        Worker { queue: Arc::new(Mutex::new(VecDeque::new())), lifo: true }
    }

    pub fn new_fifo() -> Self {
        Worker { queue: Arc::new(Mutex::new(VecDeque::new())), lifo: false }
    }

    pub fn push(&self, task: T) {
        lock(&self.queue).push_back(task);
    }

    pub fn pop(&self) -> Option<T> {
        let mut q = lock(&self.queue);
        if self.lifo {
            q.pop_back()
        } else {
            q.pop_front()
        }
    }

    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    pub fn stealer(&self) -> Stealer<T> {
        Stealer { queue: Arc::clone(&self.queue) }
    }
}

/// Handle through which other workers steal from a [`Worker`]'s deque.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { queue: Arc::clone(&self.queue) }
    }
}

impl<T> Stealer<T> {
    /// Steal from the opposite end of the owner's pops (FIFO side).
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_batch_steal_moves_work() {
        let inj = Injector::new();
        for i in 0..40 {
            inj.push(i);
        }
        let local = Worker::new_lifo();
        let got = inj.steal_batch_and_pop(&local);
        assert_eq!(got, Steal::Success(0));
        assert!(!local.is_empty());
        let mut drained = 0;
        while local.pop().is_some() {
            drained += 1;
        }
        assert!(drained > 0);
    }

    #[test]
    fn worker_lifo_stealer_fifo() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(1)); // oldest from the steal side
        assert_eq!(w.pop(), Some(2)); // newest from the owner side
        assert_eq!(s.steal(), Steal::Empty);
    }
}
