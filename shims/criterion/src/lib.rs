//! Offline stand-in for `criterion`.
//!
//! Implements the macro and builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups, throughput,
//! `Bencher::iter`) with a simple median-of-samples timer instead of
//! criterion's statistical machinery. Results print one line per benchmark:
//!
//! ```text
//! bench chunker/lexical_encoder      123.4 µs/iter   1.23 Melem/s
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier with a parameter, e.g. `budget/256`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to each benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    samples: usize,
    /// Median seconds per iteration, recorded by `iter`.
    result_secs: f64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and a rough scale for how many iterations fit a sample.
        let warmup_start = Instant::now();
        black_box(routine());
        let rough = warmup_start.elapsed().max(Duration::from_nanos(50));
        let per_sample_target = Duration::from_millis(10);
        let iters_per_sample =
            (per_sample_target.as_nanos() / rough.as_nanos()).clamp(1, 10_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.samples);
        let budget = Instant::now();
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
            // Hard cap so `cargo bench` stays fast even for slow routines.
            if budget.elapsed() > Duration::from_millis(500) {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.result_secs = samples[samples.len() / 2];
    }
}

fn humanize_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.1} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.1} µs", secs * 1e6)
    } else {
        format!("{:.0} ns", secs * 1e9)
    }
}

fn humanize_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}/s", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k{unit}/s", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}/s")
    }
}

/// A named group of benchmarks sharing sample/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher { samples: self.sample_size, result_secs: 0.0 };
        f(&mut b);
        let per_iter = b.result_secs;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("   {}", humanize_rate(n as f64 / per_iter, "elem"))
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("   {}", humanize_rate(n as f64 / per_iter, "B"))
            }
            _ => String::new(),
        };
        println!(
            "bench {:<40} {:>12}/iter{rate}",
            format!("{}/{}", self.name, id),
            humanize_secs(per_iter)
        );
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run_one(&id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.to_string();
        self.run_one(&id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The harness entry object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.run_one("", f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
