//! Offline stand-in for `crossbeam-utils`: the [`Backoff`] helper.

use std::cell::Cell;

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

/// Exponential backoff for spin loops, API-compatible with
/// `crossbeam_utils::Backoff`.
#[derive(Debug, Default)]
pub struct Backoff {
    step: Cell<u32>,
}

impl Backoff {
    pub fn new() -> Self {
        Backoff { step: Cell::new(0) }
    }

    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Spin briefly, escalating to `yield_now` once spinning stops helping.
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            for _ in 0..(1u32 << step.min(SPIN_LIMIT)) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// Spin without escalating the step past the spin phase.
    pub fn spin(&self) {
        let step = self.step.get();
        for _ in 0..(1u32 << step.min(SPIN_LIMIT)) {
            std::hint::spin_loop();
        }
        if step <= SPIN_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// True once backing off further would be better served by parking.
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_after_enough_snoozes() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}
