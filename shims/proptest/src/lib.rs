//! Offline stand-in for `proptest`.
//!
//! Supports the strategy surface this workspace's property tests use:
//! numeric ranges, `any::<T>()`, `proptest::collection::vec`, and simple
//! regex-shaped string patterns (`".{0,400}"`, `"[A-Za-z0-9,;. ]{0,400}"`).
//! Each `proptest!` test runs a fixed number of deterministic cases seeded
//! from the test name; there is no shrinking — the failing case's inputs are
//! printed by the panic message instead.

use std::ops::Range;

/// Cases per property (the real proptest defaults to 256 with shrinking).
pub const CASES: usize = 96;

/// Deterministic splitmix64 generator, seeded per test.
pub struct TestRng(u64);

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. Unlike proptest's `Strategy` there is no value tree
/// and no shrinking — `generate` returns the final value directly.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

// ---- any::<T>() ------------------------------------------------------------

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the full range of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---- numeric ranges --------------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

// ---- string patterns -------------------------------------------------------

/// Characters `.` may produce: mostly printable ASCII with some multi-byte
/// UTF-8 so byte-index bugs surface, mirroring proptest's unicode coverage.
const DOT_EXTRA: &[char] = &['é', 'π', '≈', '樹', '🜚', 'ß', '¶'];

enum CharClass {
    /// `.` — any character (no newline).
    Dot,
    /// `[...]` — an explicit set.
    Set(Vec<char>),
}

struct PatternStrategy {
    class: CharClass,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> PatternStrategy {
    let (class, rest) = if let Some(rest) = pattern.strip_prefix('.') {
        (CharClass::Dot, rest)
    } else if let Some(after) = pattern.strip_prefix('[') {
        let close = after.find(']').expect("pattern: unterminated char class");
        let body: Vec<char> = after[..close].chars().collect();
        let mut set = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                for cp in lo..=hi {
                    if let Some(c) = char::from_u32(cp) {
                        set.push(c);
                    }
                }
                i += 3;
            } else {
                set.push(body[i]);
                i += 1;
            }
        }
        (CharClass::Set(set), &after[close + 1..])
    } else {
        panic!("unsupported pattern strategy: {pattern}");
    };
    let (min, max) = if let Some(body) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
        match body.split_once(',') {
            Some((lo, hi)) => (
                lo.parse().expect("pattern: bad min repeat"),
                hi.parse().expect("pattern: bad max repeat"),
            ),
            None => {
                let n = body.parse().expect("pattern: bad repeat");
                (n, n)
            }
        }
    } else if rest.is_empty() {
        (1, 1)
    } else {
        panic!("unsupported pattern suffix: {rest}");
    };
    PatternStrategy { class, min, max }
}

impl Strategy for PatternStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
        let mut out = String::new();
        for _ in 0..len {
            let c = match &self.class {
                CharClass::Dot => {
                    if rng.below(10) == 0 {
                        DOT_EXTRA[rng.below(DOT_EXTRA.len() as u64) as usize]
                    } else {
                        char::from_u32(0x20 + rng.below(0x5F) as u32).expect("printable ascii")
                    }
                }
                CharClass::Set(set) => set[rng.below(set.len() as u64) as usize],
            };
            out.push(c);
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        parse_pattern(self).generate(rng)
    }
}

// ---- collections -----------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- macros ----------------------------------------------------------------

/// Run each embedded test over [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let case_info = format!(
                        concat!("case {}: ", $(stringify!($arg), " = {:?} "),+),
                        case, $(&$arg),+
                    );
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(e) = result {
                        eprintln!("proptest failure in {}: {}", stringify!($name), case_info);
                        std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

/// `prop_assert!` — plain assert (no shrink-aware error routing).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain assert_eq.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — plain assert_ne.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let x = (10usize..20).generate(&mut rng);
            assert!((10..20).contains(&x));
            let f = (-2.0f32..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn patterns_generate_members() {
        let mut rng = TestRng::from_name("patterns");
        for _ in 0..200 {
            let s = "[A-Ca-c0-2,; ]{1,9}".generate(&mut rng);
            assert!((1..=9).contains(&s.chars().count()));
            assert!(s.chars().all(|c| "ABCabc012,; ".contains(c)), "{s}");
        }
        let any_len = ".{0,40}".generate(&mut rng);
        assert!(any_len.chars().count() <= 40);
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..200 {
            let v = collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
