//! Offline stand-in for `rayon`.
//!
//! Exposes the slice of the rayon API this workspace uses (`par_iter`,
//! `into_par_iter`, and the map/filter/zip/reduce combinator family). Unlike
//! rayon's lazy work-stealing drivers, each combinator here executes eagerly
//! by chunking the realised items across `std::thread::scope` threads; output
//! order always matches input order, as with rayon's indexed iterators.

/// Execute `f` over `items` in parallel, preserving order.
fn par_exec<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n.max(1));
    if threads <= 1 || n < 2 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_len));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    let mut out: Vec<U> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel task panicked"));
        }
    });
    out
}

/// An eager "parallel iterator": items already realised, combinators run
/// in parallel and return another realised iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync + Send,
    {
        ParIter { items: par_exec(self.items, f) }
    }

    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync + Send,
    {
        let kept = par_exec(self.items, |x| if f(&x) { Some(x) } else { None });
        ParIter { items: kept.into_iter().flatten().collect() }
    }

    pub fn filter_map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> Option<U> + Sync + Send,
    {
        let kept = par_exec(self.items, f);
        ParIter { items: kept.into_iter().flatten().collect() }
    }

    pub fn flat_map<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync + Send,
    {
        let nested = par_exec(self.items, |x| f(x).into_iter().collect::<Vec<U>>());
        ParIter { items: nested.into_iter().flatten().collect() }
    }

    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter { items: self.items.into_iter().zip(other.items).collect() }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync + Send,
    {
        let _ = par_exec(self.items, f);
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync + Send,
        OP: Fn(T, T) -> T + Sync + Send,
    {
        let n = self.items.len();
        let threads =
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n.max(1));
        if threads <= 1 || n < 2 {
            return self.items.into_iter().fold(identity(), &op);
        }
        let chunk_len = n.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut items = self.items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk_len));
            chunks.push(std::mem::replace(&mut items, rest));
        }
        let identity = &identity;
        let op = &op;
        let mut partials: Vec<T> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| s.spawn(move || chunk.into_iter().fold(identity(), op)))
                .collect();
            for h in handles {
                partials.push(h.join().expect("parallel reduce panicked"));
            }
        });
        partials.into_iter().fold(identity(), op)
    }

    pub fn count(self) -> usize {
        self.items.len()
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// `collection.into_par_iter()` — consuming entry point.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range!(u16, u32, u64, usize, i32, i64);

/// `collection.par_iter()` — borrowing entry point.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0u64..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0u64..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_zip_reduce() {
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (100..200).collect();
        let evens: Vec<(u32, u32)> = a
            .par_iter()
            .zip(b.par_iter())
            .filter(|(x, _)| **x % 2 == 0)
            .map(|(x, y)| (*x, *y))
            .collect();
        assert_eq!(evens.len(), 50);
        assert_eq!(evens[0], (0, 100));
        let sum = (0u64..1000).into_par_iter().reduce(|| 0, |x, y| x + y);
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn flat_map_flattens_in_order() {
        let v = vec![1usize, 2, 3];
        let out: Vec<usize> = v.par_iter().flat_map(|&n| vec![n; n]).collect();
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3]);
    }
}
